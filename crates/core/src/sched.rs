//! The two-pass local list scheduler (paper §4).
//!
//! *The scheduler uses a common two pass list scheduling algorithm.
//! The first pass starts at the end of the block and works backwards
//! to compute the length (in cycles) of the dependence chain between
//! every instruction and the end of the block. … The second pass
//! starts at the beginning of the block and works forward, to order
//! instructions with list scheduling. The instruction with the highest
//! priority of any instruction that can be legally scheduled at this
//! point is put next in the schedule. An instruction's priority is
//! determined primarily by how few stalls it requires before it can
//! start execution (as computed by `pipeline_stalls`). If two
//! instructions require the same number of stalls, the instruction
//! farthest from the end of the block … is scheduled first. If two
//! instructions still have the same priority, the instruction listed
//! earlier in the original code sequence is chosen.*

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use eel_edit::{BlockCode, BlockInfo, Tagged};
use eel_pipeline::{
    attribute_block, BlockTiming, MachineModel, PipelineState, PreparedInsn, StallProfile,
};
use eel_sparc::Instruction;
use eel_telemetry::Sink;

use crate::dep::DepGraph;
use crate::policy::{Candidate, ChainFirst, LoadDelay, LookaheadK, SchedulePolicy, StallsFirst};

/// Which rule orders the ready list (the ablation of §4's priority).
///
/// Each variant names a [`SchedulePolicy`] implementation; the
/// scheduler resolves it once at construction. The enum stays `Copy`
/// and `Eq` so it can live in cache keys and option structs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Priority {
    /// The paper's rule: fewest stalls, then longest chain to the
    /// block end, then original order.
    #[default]
    StallsFirst,
    /// Classic critical-path list scheduling: longest chain first,
    /// then fewest stalls, then original order.
    ChainFirst,
    /// Fewest stalls, but stall ties prefer producers whose consumers
    /// are not already covered by a load shadow (Diavastos & Carlson).
    LoadDelay,
    /// Fewest stalls, with ties resolved by simulating the top-`k`
    /// tied candidates one step ahead on a cloned scoreboard.
    Lookahead(u8),
    /// The branch-and-bound oracle (see [`crate::exact`]): the body is
    /// list-scheduled under the paper's rule for an incumbent, then
    /// searched to a proven minimum-latency order (or to the node
    /// budget, falling back to the incumbent). Excluded from
    /// [`Priority::ALL`]: it is a ground-truth backend for gap
    /// measurement, not a sweepable ready-list rule.
    Exact,
}

impl Priority {
    /// Every selectable ready-list policy, with the default lookahead
    /// depth — the sweep axis for ablations and property tests. The
    /// [`Priority::Exact`] oracle is deliberately not here: sweeps and
    /// property loops iterate this array, and the oracle is orders of
    /// magnitude slower than any list policy.
    pub const ALL: [Priority; 4] = [
        Priority::StallsFirst,
        Priority::ChainFirst,
        Priority::LoadDelay,
        Priority::Lookahead(3),
    ];

    /// Resolves the variant to its policy object. The exact oracle has
    /// no ready-list rule of its own; it resolves to the paper's
    /// [`StallsFirst`], which generates its incumbent and orders its
    /// search candidates.
    pub fn policy(self) -> Arc<dyn SchedulePolicy> {
        match self {
            Priority::StallsFirst | Priority::Exact => Arc::new(StallsFirst),
            Priority::ChainFirst => Arc::new(ChainFirst),
            Priority::LoadDelay => Arc::new(LoadDelay),
            Priority::Lookahead(k) => Arc::new(LookaheadK { k: k as usize }),
        }
    }

    /// Parses a `--policy` flag value: `stalls-first`, `chain-first`,
    /// `load-delay`, `lookahead[:k]` (default k = 3), or `exact`.
    pub fn parse(s: &str) -> Option<Priority> {
        match s {
            "stalls" | "stalls-first" => Some(Priority::StallsFirst),
            "chain" | "chain-first" => Some(Priority::ChainFirst),
            "load-delay" | "loaddelay" => Some(Priority::LoadDelay),
            "lookahead" => Some(Priority::Lookahead(3)),
            "exact" => Some(Priority::Exact),
            _ => {
                let k = s.strip_prefix("lookahead:")?.parse::<u8>().ok()?;
                if k == 0 {
                    None
                } else {
                    Some(Priority::Lookahead(k))
                }
            }
        }
    }
}

impl std::fmt::Display for Priority {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Priority::StallsFirst => f.write_str("stalls-first"),
            Priority::ChainFirst => f.write_str("chain-first"),
            Priority::LoadDelay => f.write_str("load-delay"),
            Priority::Lookahead(k) => write!(f, "lookahead:{k}"),
            Priority::Exact => f.write_str("exact"),
        }
    }
}

/// Options controlling the scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedOptions {
    /// Assume instrumentation memory traffic is independent of the
    /// original program's (the paper's default; see §4). Disable to
    /// "limit the movement of instrumentation code".
    pub instr_mem_independent: bool,
    /// After scheduling, try to move the last body instruction into a
    /// `nop` delay slot when that is semantics-preserving. The paper's
    /// scheduler does not do this; it is an ablation extension.
    pub fill_delay_slots: bool,
    /// The ready-list priority rule.
    pub priority: Priority,
    /// Per-block node budget for the [`Priority::Exact`] oracle; when
    /// the search exhausts it, the incumbent list schedule stands (the
    /// oracle never returns a worse order). Ignored by list policies.
    pub exact_budget: u32,
}

impl Default for SchedOptions {
    fn default() -> SchedOptions {
        SchedOptions {
            instr_mem_independent: true,
            fill_delay_slots: false,
            priority: Priority::StallsFirst,
            exact_budget: crate::exact::DEFAULT_EXACT_BUDGET,
        }
    }
}

/// One block's schedule with before/after stall attribution, from
/// [`Scheduler::explain_block`].
#[derive(Debug, Clone)]
pub struct ScheduleExplain {
    /// The scheduled block (what [`Scheduler::schedule_block`] would
    /// have returned).
    pub scheduled: BlockCode,
    /// Timing of the block as given (body then tail) on an empty pipe.
    pub before: BlockTiming,
    /// Per-cause attribution of the unscheduled block's stalls;
    /// `before_profile.total() == before.stalls`.
    pub before_profile: StallProfile,
    /// Timing of the scheduled block on an empty pipe.
    pub after: BlockTiming,
    /// Per-cause attribution of the scheduled block's stalls;
    /// `after_profile.total() == after.stalls`.
    pub after_profile: StallProfile,
}

/// The local instruction scheduler added to EEL.
///
/// ```
/// use eel_core::Scheduler;
/// use eel_edit::{BlockCode, Tagged};
/// use eel_pipeline::MachineModel;
/// use eel_sparc::{Address, Instruction, IntReg, MemWidth, Operand};
///
/// let sched = Scheduler::new(MachineModel::ultrasparc());
/// // A load-use pair with an independent instruction after it: the
/// // scheduler hides the load latency behind the independent op.
/// let code = BlockCode {
///     body: vec![
///         Tagged::original(Instruction::Load {
///             width: MemWidth::Word,
///             addr: Address::base_imm(IntReg::O0, 0),
///             rd: IntReg::O1,
///         }),
///         Tagged::original(Instruction::mov(Operand::Reg(IntReg::O1), IntReg::O2)),
///         Tagged::original(Instruction::mov(Operand::imm(7), IntReg::O3)),
///     ],
///     tail: vec![],
/// };
/// let out = sched.schedule_block(code);
/// // The independent mov now sits between the load and its use.
/// assert_eq!(out.body[1].insn, Instruction::mov(Operand::imm(7), IntReg::O3));
/// ```
#[derive(Debug, Clone)]
pub struct Scheduler {
    model: MachineModel,
    options: SchedOptions,
    /// The ready-list rule, resolved once from `options.priority`.
    policy: Arc<dyn SchedulePolicy>,
    /// Total `pipeline_stalls` queries across all blocks scheduled.
    /// Clones share the counter: the bench engine hands clones to
    /// worker threads and reads one aggregate afterwards.
    queries: Arc<AtomicU64>,
}

impl Scheduler {
    /// A scheduler for `model` with default options.
    pub fn new(model: MachineModel) -> Scheduler {
        Scheduler::with_options(model, SchedOptions::default())
    }

    /// A scheduler with explicit options.
    pub fn with_options(model: MachineModel, options: SchedOptions) -> Scheduler {
        Scheduler {
            model,
            policy: options.priority.policy(),
            options,
            queries: Arc::new(AtomicU64::new(0)),
        }
    }

    /// The active ready-list policy (resolved from
    /// [`SchedOptions::priority`]).
    pub fn policy(&self) -> &dyn SchedulePolicy {
        &*self.policy
    }

    /// The machine model being scheduled for.
    pub fn model(&self) -> &MachineModel {
        &self.model
    }

    /// The active options.
    pub fn options(&self) -> SchedOptions {
        self.options
    }

    /// How many `pipeline_stalls` queries this scheduler (and its
    /// clones) have issued — the hot-path work metric the bench
    /// harness reports as ns/query.
    pub fn stall_queries(&self) -> u64 {
        self.queries.load(Ordering::Relaxed)
    }

    /// Schedules one block: reorders the body by two-pass list
    /// scheduling; the control tail stays in place (optionally
    /// receiving a delay-slot filler).
    ///
    /// Equivalent to [`Scheduler::schedule_block_with`] with the
    /// disabled telemetry sink `()` — this is the uninstrumented hot
    /// path.
    pub fn schedule_block(&self, code: BlockCode) -> BlockCode {
        self.schedule_block_with(code, &())
    }

    /// [`Scheduler::schedule_block`] observed through a telemetry
    /// sink.
    ///
    /// With a live sink (for example `&eel_telemetry::Registry`), each
    /// block records `sched.blocks` / `sched.queries` counters and
    /// `sched.block_ns` / `sched.block_len` / `sched.dep_build_ns` /
    /// `sched.stall_query_ns` histograms. With `&()` every telemetry
    /// operation — including the per-query clock reads — is statically
    /// dead code, so the scheduled output and the cost of producing it
    /// are identical to the plain method's.
    pub fn schedule_block_with<S: Sink>(&self, code: BlockCode, sink: &S) -> BlockCode {
        let mut out = BlockCode {
            body: self.schedule_body(code.body, sink),
            tail: code.tail,
        };
        if self.options.fill_delay_slots {
            self.fill_delay_slot(&mut out);
        }
        out
    }

    /// An adapter for [`eel_edit::EditSession::emit`].
    pub fn transform(&self) -> impl FnMut(BlockInfo<'_>, BlockCode) -> BlockCode + '_ {
        move |_info, code| self.schedule_block(code)
    }

    /// A [`Scheduler::transform`] that records telemetry into `sink`
    /// for every block it schedules.
    pub fn transform_with<'a, S: Sink>(
        &'a self,
        sink: &'a S,
    ) -> impl FnMut(BlockInfo<'_>, BlockCode) -> BlockCode + 'a {
        move |_info, code| self.schedule_block_with(code, sink)
    }

    /// Schedules one block and attributes every stall cycle of the
    /// original and scheduled sequences — the observability companion
    /// to [`Scheduler::schedule_block`] behind `eel explain`.
    ///
    /// Both sequences (body followed by control tail) are replayed on
    /// an empty pipe through the recording sink; the scheduling pass
    /// itself runs unrecorded, so this adds replay cost but never
    /// perturbs the hot path. Each profile's
    /// [`StallProfile::total`] equals the corresponding timing's
    /// `stalls` exactly.
    pub fn explain_block(&self, code: BlockCode) -> ScheduleExplain {
        fn insns(code: &BlockCode) -> Vec<Instruction> {
            code.body.iter().chain(&code.tail).map(|t| t.insn).collect()
        }
        let before_insns = insns(&code);
        let scheduled = self.schedule_block(code);
        let (before, before_profile) = attribute_block(&self.model, &before_insns);
        let (after, after_profile) = attribute_block(&self.model, &insns(&scheduled));
        ScheduleExplain {
            scheduled,
            before,
            before_profile,
            after,
            after_profile,
        }
    }

    /// Runs the branch-and-bound oracle (see [`crate::exact`]) on one
    /// block, without going through [`Priority::Exact`] options: the
    /// body is list-scheduled under the active ready-list policy as
    /// the incumbent, then searched to a proven optimum or to
    /// [`SchedOptions::exact_budget`]. The control tail takes no part,
    /// mirroring [`Scheduler::schedule_block`].
    pub fn exact_block(&self, code: &BlockCode) -> crate::exact::ExactOutcome {
        let body = &code.body;
        let graph = DepGraph::build(&self.model, body, self.options.instr_mem_independent);
        let incumbent = if body.len() <= 1 {
            body.clone()
        } else {
            self.list_pass(body, &graph, &graph.chain_to_end(), &())
        };
        crate::exact::exact_schedule(
            &self.model,
            body,
            &graph,
            &incumbent,
            u64::from(self.options.exact_budget),
        )
    }

    /// Two-pass list scheduling over a straight-line body, plus the
    /// exact-oracle refinement when [`Priority::Exact`] is selected.
    fn schedule_body<S: Sink>(&self, body: Vec<Tagged>, sink: &S) -> Vec<Tagged> {
        let n = body.len();
        if n <= 1 {
            return body;
        }
        let block_span = sink.span("sched.block_ns");
        let _trace = if S::TRACE_ENABLED {
            sink.trace_span("sched", "block", n as u64, 0)
        } else {
            None
        };

        let graph = {
            let _dep_span = sink.span("sched.dep_build_ns");
            DepGraph::build(&self.model, &body, self.options.instr_mem_independent)
        };

        // Pass 1 (backward): dependence-chain length to block end.
        let cte = graph.chain_to_end();

        let out = self.list_pass(&body, &graph, &cte, sink);
        let out = if self.options.priority == Priority::Exact {
            self.exact_pass(&body, &graph, out, sink)
        } else {
            out
        };
        drop(block_span);
        out
    }

    /// The forward list-scheduling pass (§4's second pass), over a
    /// prebuilt dependence graph and chain-to-end lengths.
    fn list_pass<S: Sink>(
        &self,
        body: &[Tagged],
        graph: &DepGraph,
        cte: &[u32],
        sink: &S,
    ) -> Vec<Tagged> {
        let n = body.len();
        // Telemetry handles are resolved once per block; per-query
        // recording below goes straight through the `Arc`.
        let query_hist = if S::ENABLED {
            sink.histogram("sched.stall_query_ns")
        } else {
            None
        };

        // Forward pass: list scheduling against the pipeline model.
        // Resolve every instruction against the model once; candidates
        // are re-queried across rounds, and the prepared form makes
        // each query pure array arithmetic.
        let prepared: Vec<PreparedInsn> =
            body.iter().map(|t| self.model.prepare(&t.insn)).collect();
        let mut remaining_preds: Vec<u32> = graph.pred_counts().to_vec();
        let mut scheduled = vec![false; n];
        // Lower bound on each candidate's earliest absolute issue
        // cycle, from its most recent `stalls` answer. Sound because
        // issuing other instructions only consumes units and raises
        // register-hazard cycles — a candidate's earliest slot never
        // moves earlier — so a candidate whose bound already loses to
        // the round's best needs no fresh query.
        let mut bound = vec![0u64; n];
        let mut pipe = PipelineState::new(&self.model);
        let mut out = Vec::with_capacity(n);

        let policy = &*self.policy;
        let prunes = policy.prunes_on_stall_bound();
        let lookahead = policy.lookahead();
        let shadowed: Vec<bool> = if policy.uses_load_shadow() {
            graph.load_shadowed()
        } else {
            Vec::new()
        };
        // Stall queries issued on cloned scoreboards during lookahead;
        // the main pipe's counter never sees them.
        let mut lookahead_queries: u64 = 0;

        for _ in 0..n {
            // Pick the highest-priority ready instruction under the
            // active policy.
            let mut best: Option<Candidate> = None;
            // Candidates queried this round, in original order — the
            // lookahead tie set is drawn from these.
            let mut round: Vec<Candidate> = Vec::new();
            for i in 0..n {
                if scheduled[i] || remaining_preds[i] != 0 {
                    continue;
                }
                // §3.2 monotone skip, gated per policy: a candidate
                // whose optimistic bound already has strictly more
                // stalls than the round leader can neither win nor
                // tie when stalls is the primary key. Only strict
                // losses are skipped — a candidate that could tie
                // must still be queried, since tie-breaks can favor
                // it — so the chosen schedule is unchanged.
                if prunes {
                    if let Some(b) = &best {
                        let lb = bound[i].saturating_sub(pipe.cycle());
                        if lb > b.stalls {
                            continue;
                        }
                    }
                }
                let stalls = if let Some(h) = &query_hist {
                    let t0 = Instant::now();
                    let stalls = pipe.stalls_prepared(&self.model, &body[i].insn, &prepared[i]);
                    h.record(t0.elapsed().as_nanos() as u64);
                    stalls
                } else {
                    pipe.stalls_prepared(&self.model, &body[i].insn, &prepared[i])
                };
                bound[i] = pipe.cycle() + stalls;
                let cand = Candidate {
                    stalls,
                    chain_to_end: cte[i],
                    index: i,
                    load_shadowed: shadowed.get(i).copied().unwrap_or(false),
                };
                if lookahead > 0 {
                    round.push(cand);
                }
                match &best {
                    None => best = Some(cand),
                    Some(b) => {
                        if policy.better(&cand, b) {
                            best = Some(cand);
                        }
                    }
                }
            }
            let best = best.expect("dependence graph of a finite body always has a ready node");
            let pick = if lookahead > 0 {
                let (pick, extra) = self.lookahead_pick(
                    &best,
                    &round,
                    &pipe,
                    body,
                    &prepared,
                    graph,
                    &scheduled,
                    &remaining_preds,
                );
                lookahead_queries += extra;
                pick
            } else {
                best.index
            };
            pipe.issue_prepared(&self.model, &body[pick].insn, &prepared[pick]);
            scheduled[pick] = true;
            for e in graph.succ_edges(pick) {
                remaining_preds[e.to] -= 1;
            }
            out.push(body[pick]);
        }
        let block_queries = pipe.stall_queries() + lookahead_queries;
        self.queries.fetch_add(block_queries, Ordering::Relaxed);
        if S::ENABLED {
            sink.add("sched.blocks", 1);
            sink.add("sched.queries", block_queries);
            sink.record("sched.block_len", n as u64);
        }
        out
    }

    /// The exact-oracle refinement behind [`Priority::Exact`]: search
    /// from the list incumbent, record gap telemetry, and return the
    /// best order found (never worse than `incumbent`).
    fn exact_pass<S: Sink>(
        &self,
        body: &[Tagged],
        graph: &DepGraph,
        incumbent: Vec<Tagged>,
        sink: &S,
    ) -> Vec<Tagged> {
        let _trace = if S::TRACE_ENABLED {
            sink.trace_span("sched", "exact", body.len() as u64, 0)
        } else {
            None
        };
        let outcome = crate::exact::exact_schedule(
            &self.model,
            body,
            graph,
            &incumbent,
            u64::from(self.options.exact_budget),
        );
        self.queries.fetch_add(outcome.queries, Ordering::Relaxed);
        if S::ENABLED {
            sink.add("sched.exact_blocks", 1);
            sink.add("sched.exact_nodes", outcome.nodes);
            sink.add("sched.gap_cycles", outcome.gap());
            if outcome.proven_optimal {
                sink.add("sched.optimal_blocks", 1);
            }
            if outcome.budget_exhausted {
                sink.add("sched.exact_budget_exhausted", 1);
            }
        }
        outcome.body
    }

    /// Resolves one round's pick by one-step lookahead: among the
    /// round's candidates tied with `best` under the policy's `ties`
    /// relation, issue each of the first `k` (original order) on a
    /// cloned scoreboard and keep the one whose best follow-up
    /// candidate would stall least; remaining ties fall back to the
    /// base order's winner (the smallest original index). Returns the
    /// chosen index and the number of stall queries spent on clones.
    #[allow(clippy::too_many_arguments)]
    fn lookahead_pick(
        &self,
        best: &Candidate,
        round: &[Candidate],
        pipe: &PipelineState,
        body: &[Tagged],
        prepared: &[PreparedInsn],
        graph: &DepGraph,
        scheduled: &[bool],
        remaining_preds: &[u32],
    ) -> (usize, u64) {
        let policy = &*self.policy;
        let tied: Vec<&Candidate> = round
            .iter()
            .filter(|c| c.index == best.index || policy.ties(c, best))
            .take(policy.lookahead())
            .collect();
        if tied.len() < 2 {
            return (best.index, 0);
        }
        let mut extra = 0u64;
        // (best follow-up stalls, original index), minimized. `best`
        // holds the smallest index among ties, so an all-equal
        // lookahead degenerates to the base order.
        let mut winner = (u64::MAX, usize::MAX);
        for c in tied {
            let mut clone = pipe.clone();
            let before = clone.stall_queries();
            clone.issue_prepared(&self.model, &body[c.index].insn, &prepared[c.index]);
            let mut followup = u64::MAX;
            for j in 0..body.len() {
                if j == c.index || scheduled[j] {
                    continue;
                }
                // Ready after `c` issues? Edges are deduplicated (one
                // strongest edge per pair), so `c` accounts for at
                // most one predecessor of `j`.
                let mut preds = remaining_preds[j];
                if preds > 0 && graph.succ_edges(c.index).any(|e| e.to == j) {
                    preds -= 1;
                }
                if preds != 0 {
                    continue;
                }
                followup =
                    followup.min(clone.stalls_prepared(&self.model, &body[j].insn, &prepared[j]));
            }
            extra += clone.stall_queries() - before;
            // An empty follow-up ready set stalls nothing.
            let score = (if followup == u64::MAX { 0 } else { followup }, c.index);
            if score < winner {
                winner = score;
            }
        }
        (winner.1, extra)
    }

    /// Moves the last body instruction into the delay slot when the
    /// slot holds a `nop` and the move preserves semantics.
    fn fill_delay_slot(&self, code: &mut BlockCode) {
        if code.tail.len() != 2 || !code.tail[1].insn.is_nop() {
            return;
        }
        let cti = code.tail[0].insn;
        // An annulled slot only executes on the taken path; moving
        // fall-through code there changes the untaken path.
        if cti.annul() == Some(true) {
            return;
        }
        let Some(candidate) = code.body.last().copied() else {
            return;
        };
        if candidate.insn.is_scheduling_barrier() || candidate.insn.is_cti() {
            return;
        }
        // The CTI's condition must not depend on the candidate.
        let cti_uses = cti.uses();
        if candidate.insn.defs().iter().any(|d| cti_uses.contains(d)) {
            return;
        }
        code.body.pop();
        code.tail[1] = candidate;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eel_edit::Origin;
    use eel_pipeline::evaluate_block;
    use eel_sparc::{Address, AluOp, Cond, Instruction, IntReg, MemWidth, Operand};

    fn orig(i: Instruction) -> Tagged {
        Tagged::original(i)
    }

    fn inst(i: Instruction) -> Tagged {
        Tagged::instrumentation(i)
    }

    fn add(rs1: IntReg, rd: IntReg) -> Instruction {
        Instruction::Alu {
            op: AluOp::Add,
            rs1,
            src2: Operand::imm(1),
            rd,
        }
    }

    fn ld(base: IntReg, rd: IntReg) -> Instruction {
        Instruction::Load {
            width: MemWidth::Word,
            addr: Address::base_imm(base, 0),
            rd,
        }
    }

    #[test]
    fn explain_block_attribution_sums_to_stalls() {
        let sched = Scheduler::new(MachineModel::ultrasparc());
        let code = BlockCode {
            body: vec![
                orig(ld(IntReg::O0, IntReg::O1)),
                orig(add(IntReg::O1, IntReg::O2)),
                orig(add(IntReg::O4, IntReg::O5)),
            ],
            tail: vec![],
        };
        let ex = sched.explain_block(code);
        // The explain invariant: every stall cycle is classified,
        // once, before and after scheduling.
        assert_eq!(ex.before_profile.total(), ex.before.stalls);
        assert_eq!(ex.after_profile.total(), ex.after.stalls);
        // The load-use gap shows up as RAW stalls on %o1 before
        // scheduling, and the schedule never becomes slower.
        assert!(ex.before.stalls > 0);
        assert!(ex.before_profile.raw_total() > 0, "{:?}", ex.before_profile);
        assert!(ex.after.stalls <= ex.before.stalls);
        assert!(ex.after.issue_latency() <= ex.before.issue_latency());
        assert!(ex.scheduled.body.len() == 3);
    }

    fn st(src: IntReg, base: IntReg) -> Instruction {
        Instruction::Store {
            width: MemWidth::Word,
            src,
            addr: Address::base_imm(base, 0),
        }
    }

    fn issue_latency(model: &MachineModel, body: &[Tagged]) -> u64 {
        let insns: Vec<Instruction> = body.iter().map(|t| t.insn).collect();
        evaluate_block(model, &insns).issue_latency()
    }

    /// Runs the scheduler and checks every dependence is preserved.
    fn schedule_checked(sched: &Scheduler, body: Vec<Tagged>) -> Vec<Tagged> {
        let graph = DepGraph::build(sched.model(), &body, sched.options().instr_mem_independent);
        let out = sched
            .schedule_block(BlockCode {
                body: body.clone(),
                tail: vec![],
            })
            .body;
        assert_eq!(out.len(), body.len(), "no instruction lost or added");
        // Positions of original indices in the output.
        let pos: Vec<usize> = body
            .iter()
            .map(|t| {
                out.iter()
                    .position(|o| o == t)
                    .expect("every input instruction appears")
            })
            .collect();
        for e in &graph.edges {
            // For duplicated instructions `position` can alias, so only
            // check when the tagged values are distinct.
            if body[e.from] != body[e.to] {
                assert!(
                    pos[e.from] < pos[e.to],
                    "dependence {:?} violated: {} !< {}",
                    e,
                    pos[e.from],
                    pos[e.to]
                );
            }
        }
        out
    }

    #[test]
    fn fills_load_delay_with_independent_work() {
        let sched = Scheduler::new(MachineModel::ultrasparc());
        let body = vec![
            orig(ld(IntReg::O0, IntReg::O1)),
            orig(add(IntReg::O1, IntReg::O2)), // needs the load
            orig(add(IntReg::O3, IntReg::O4)), // independent
        ];
        let before = issue_latency(sched.model(), &body);
        let out = schedule_checked(&sched, body);
        let after = issue_latency(sched.model(), &out);
        assert!(
            after <= before,
            "schedule must not regress: {after} > {before}"
        );
        assert_eq!(
            out[1].insn,
            add(IntReg::O3, IntReg::O4),
            "independent op fills the gap"
        );
    }

    #[test]
    fn hides_instrumentation_in_stall_cycles() {
        // Original: a load-use pair (a 2-cycle bubble on UltraSPARC).
        // Instrumentation: a counter update. The scheduler should slot
        // the counter code into the bubble.
        let sched = Scheduler::new(MachineModel::ultrasparc());
        let counter = 0x0080_0000u32;
        let body = vec![
            inst(Instruction::Sethi {
                imm22: counter >> 10,
                rd: IntReg::G1,
            }),
            inst(ld(IntReg::G1, IntReg::G2)),
            inst(add(IntReg::G2, IntReg::G2)),
            inst(st(IntReg::G2, IntReg::G1)),
            orig(ld(IntReg::O0, IntReg::O1)),
            orig(add(IntReg::O1, IntReg::O2)),
        ];
        let unscheduled = issue_latency(sched.model(), &body);
        let out = schedule_checked(&sched, body);
        let scheduled = issue_latency(sched.model(), &out);
        assert!(
            scheduled < unscheduled,
            "scheduling should hide overhead: {scheduled} !< {unscheduled}"
        );
    }

    #[test]
    fn single_instruction_is_untouched() {
        let sched = Scheduler::new(MachineModel::supersparc());
        let body = vec![orig(add(IntReg::O0, IntReg::O1))];
        let out = sched
            .schedule_block(BlockCode {
                body: body.clone(),
                tail: vec![],
            })
            .body;
        assert_eq!(out, body);
    }

    #[test]
    fn dependences_hold_on_every_machine() {
        for model in [
            MachineModel::hypersparc(),
            MachineModel::supersparc(),
            MachineModel::ultrasparc(),
        ] {
            let sched = Scheduler::new(model);
            let body = vec![
                orig(ld(IntReg::O0, IntReg::O1)),
                orig(add(IntReg::O1, IntReg::O2)),
                orig(st(IntReg::O2, IntReg::O0)),
                orig(add(IntReg::O3, IntReg::O3)),
                orig(Instruction::cmp(IntReg::O2, Operand::imm(0))),
            ];
            schedule_checked(&sched, body);
        }
    }

    #[test]
    fn cc_writer_order_preserved_for_branch() {
        // Two cc writers: their WAW edge keeps the branch's input the
        // same after scheduling.
        let sched = Scheduler::new(MachineModel::ultrasparc());
        let body = vec![
            orig(Instruction::cmp(IntReg::O0, Operand::imm(1))),
            orig(add(IntReg::O3, IntReg::O4)),
            orig(Instruction::cmp(IntReg::O1, Operand::imm(2))),
        ];
        let out = schedule_checked(&sched, body);
        let cmp1 = out
            .iter()
            .position(|t| t.insn == Instruction::cmp(IntReg::O0, Operand::imm(1)))
            .unwrap();
        let cmp2 = out
            .iter()
            .position(|t| t.insn == Instruction::cmp(IntReg::O1, Operand::imm(2)))
            .unwrap();
        assert!(cmp1 < cmp2);
    }

    #[test]
    fn tail_is_never_reordered() {
        let sched = Scheduler::new(MachineModel::ultrasparc());
        let tail = vec![
            orig(Instruction::Branch {
                cond: Cond::Ne,
                annul: false,
                disp: -4,
            }),
            orig(Instruction::nop()),
        ];
        let code = BlockCode {
            body: vec![
                orig(add(IntReg::O0, IntReg::O1)),
                orig(add(IntReg::O2, IntReg::O3)),
            ],
            tail: tail.clone(),
        };
        let out = sched.schedule_block(code);
        assert_eq!(out.tail, tail);
    }

    #[test]
    fn delay_slot_filling_moves_safe_instruction() {
        let model = MachineModel::ultrasparc();
        let sched = Scheduler::with_options(
            model,
            SchedOptions {
                fill_delay_slots: true,
                ..SchedOptions::default()
            },
        );
        let code = BlockCode {
            body: vec![
                orig(Instruction::cmp(IntReg::O0, Operand::imm(0))),
                orig(add(IntReg::O2, IntReg::O3)),
            ],
            tail: vec![
                orig(Instruction::Branch {
                    cond: Cond::Ne,
                    annul: false,
                    disp: 8,
                }),
                orig(Instruction::nop()),
            ],
        };
        let out = sched.schedule_block(code);
        assert_eq!(out.body.len(), 1);
        assert_eq!(out.tail[1].insn, add(IntReg::O2, IntReg::O3));
    }

    #[test]
    fn delay_slot_filling_respects_branch_condition() {
        // The only candidate writes the condition codes the branch
        // reads: it must not move into the slot.
        let model = MachineModel::ultrasparc();
        let sched = Scheduler::with_options(
            model,
            SchedOptions {
                fill_delay_slots: true,
                ..SchedOptions::default()
            },
        );
        let code = BlockCode {
            body: vec![orig(Instruction::cmp(IntReg::O0, Operand::imm(0)))],
            tail: vec![
                orig(Instruction::Branch {
                    cond: Cond::Ne,
                    annul: false,
                    disp: 8,
                }),
                orig(Instruction::nop()),
            ],
        };
        let out = sched.schedule_block(code.clone());
        assert_eq!(out, code, "cmp must stay out of the slot");
    }

    #[test]
    fn delay_slot_filling_respects_indirect_target_register() {
        // The candidate computes the register an indirect jump reads
        // for its target: moving it past the jump would redirect it.
        let model = MachineModel::ultrasparc();
        let sched = Scheduler::with_options(
            model,
            SchedOptions {
                fill_delay_slots: true,
                ..SchedOptions::default()
            },
        );
        let code = BlockCode {
            body: vec![orig(add(IntReg::O0, IntReg::O0))],
            tail: vec![
                orig(Instruction::Jmpl {
                    rs1: IntReg::O0,
                    src2: Operand::imm(0),
                    rd: IntReg::G0,
                }),
                orig(Instruction::nop()),
            ],
        };
        let out = sched.schedule_block(code.clone());
        assert_eq!(out, code, "the target-producing add must stay put");
    }

    #[test]
    fn delay_slot_filling_skips_barrier_and_cti_candidates() {
        let model = MachineModel::ultrasparc();
        let sched = Scheduler::with_options(
            model,
            SchedOptions {
                fill_delay_slots: true,
                ..SchedOptions::default()
            },
        );
        let tail = vec![
            orig(Instruction::Branch {
                cond: Cond::A,
                annul: false,
                disp: 8,
            }),
            orig(Instruction::nop()),
        ];
        // A register-window barrier may not enter the slot…
        let barrier = BlockCode {
            body: vec![orig(Instruction::Restore {
                rs1: IntReg::G0,
                src2: Operand::imm(0),
                rd: IntReg::G0,
            })],
            tail: tail.clone(),
        };
        let out = sched.schedule_block(barrier.clone());
        assert_eq!(out, barrier, "barriers stay out of the slot");
        // …and neither may another control transfer.
        let cti = BlockCode {
            body: vec![orig(Instruction::Call { disp: 16 })],
            tail,
        };
        let out = sched.schedule_block(cti.clone());
        assert_eq!(out, cti, "CTIs stay out of the slot");
    }

    #[test]
    fn delay_slot_filling_requires_a_nop_slot() {
        // A tail whose slot already holds real work is left alone.
        let model = MachineModel::ultrasparc();
        let sched = Scheduler::with_options(
            model,
            SchedOptions {
                fill_delay_slots: true,
                ..SchedOptions::default()
            },
        );
        let code = BlockCode {
            body: vec![orig(add(IntReg::O2, IntReg::O3))],
            tail: vec![
                orig(Instruction::Branch {
                    cond: Cond::Ne,
                    annul: false,
                    disp: 8,
                }),
                orig(add(IntReg::O4, IntReg::O5)),
            ],
        };
        let out = sched.schedule_block(code.clone());
        assert_eq!(out, code);
    }

    #[test]
    fn delay_slot_filling_skips_annulled_branches() {
        let model = MachineModel::ultrasparc();
        let sched = Scheduler::with_options(
            model,
            SchedOptions {
                fill_delay_slots: true,
                ..SchedOptions::default()
            },
        );
        let code = BlockCode {
            body: vec![orig(add(IntReg::O2, IntReg::O3))],
            tail: vec![
                orig(Instruction::Branch {
                    cond: Cond::Ne,
                    annul: true,
                    disp: 8,
                }),
                orig(Instruction::nop()),
            ],
        };
        let out = sched.schedule_block(code.clone());
        assert_eq!(out, code);
    }

    #[test]
    fn memory_conservatism_limits_original_reordering() {
        // An original load cannot move above an original store.
        let sched = Scheduler::new(MachineModel::ultrasparc());
        let body = vec![
            orig(st(IntReg::O1, IntReg::O0)),
            orig(ld(IntReg::O2, IntReg::O3)),
        ];
        let out = schedule_checked(&sched, body.clone());
        assert_eq!(out, body);
    }

    #[test]
    fn instrumentation_load_may_cross_original_store() {
        let sched = Scheduler::new(MachineModel::ultrasparc());
        // store (original, occupies LSU), then instrumentation load.
        // With independence the load may be hoisted if profitable; at
        // minimum the graph permits it. Verify the scheduler output
        // still contains both and respects no false edge.
        let body = vec![
            orig(st(IntReg::O1, IntReg::O0)),
            inst(ld(IntReg::G1, IntReg::G2)),
        ];
        let out = schedule_checked(&sched, body);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn deterministic_output() {
        let sched = Scheduler::new(MachineModel::supersparc());
        let body = vec![
            orig(add(IntReg::O0, IntReg::O1)),
            orig(add(IntReg::O2, IntReg::O3)),
            orig(add(IntReg::O4, IntReg::O5)),
            orig(ld(IntReg::L0, IntReg::L1)),
        ];
        let a = sched.schedule_block(BlockCode {
            body: body.clone(),
            tail: vec![],
        });
        let b = sched.schedule_block(BlockCode { body, tail: vec![] });
        assert_eq!(a, b);
    }

    #[test]
    fn origin_tags_survive_scheduling() {
        let sched = Scheduler::new(MachineModel::ultrasparc());
        let body = vec![
            inst(add(IntReg::G1, IntReg::G1)),
            orig(add(IntReg::O0, IntReg::O1)),
        ];
        let out = schedule_checked(&sched, body);
        assert_eq!(
            out.iter()
                .filter(|t| t.origin == Origin::Instrumentation)
                .count(),
            1
        );
        assert_eq!(
            out.iter().filter(|t| t.origin == Origin::Original).count(),
            1
        );
    }

    #[test]
    fn telemetry_sink_observes_scheduling_without_changing_it() {
        let sched = Scheduler::new(MachineModel::ultrasparc());
        let body = vec![
            orig(ld(IntReg::O0, IntReg::O1)),
            orig(add(IntReg::O1, IntReg::O2)),
            orig(add(IntReg::O3, IntReg::O4)),
        ];
        let code = BlockCode { body, tail: vec![] };
        let reg = eel_telemetry::Registry::new();
        let observed = sched.schedule_block_with(code.clone(), &reg);
        assert_eq!(observed, sched.schedule_block(code), "same schedule");
        let snap = reg.snapshot();
        assert_eq!(snap.counters["sched.blocks"], 1);
        assert_eq!(
            snap.counters["sched.queries"],
            sched.stall_queries() / 2,
            "both runs issued the same number of queries; only the observed one recorded them"
        );
        assert_eq!(snap.histograms["sched.block_len"].count, 1);
        assert_eq!(snap.histograms["sched.block_len"].max, 3);
        assert_eq!(snap.histograms["sched.block_ns"].count, 1);
        assert_eq!(snap.histograms["sched.dep_build_ns"].count, 1);
        // The candidate-selection queries are individually timed; the
        // pipe's total also counts the implicit query inside each
        // issue, so the histogram is a nonempty subset.
        let timed = snap.histograms["sched.stall_query_ns"].count;
        assert!(timed > 0);
        assert!(timed <= snap.counters["sched.queries"]);
    }

    #[test]
    fn empty_body_is_fine() {
        let sched = Scheduler::new(MachineModel::ultrasparc());
        let out = sched.schedule_block(BlockCode {
            body: vec![],
            tail: vec![],
        });
        assert!(out.is_empty());
    }
}
