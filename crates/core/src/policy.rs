//! Pluggable ready-list selection for the two-pass list scheduler.
//!
//! The paper's §4 scheduler hardwires one priority rule: fewest
//! stalls, then longest dependence chain to the block end, then
//! original order. Following the "scheduling decisions as composable
//! objects" design of Exo 2 and the load-delay-aware heuristics of
//! Diavastos & Carlson, the rule is factored into a
//! [`SchedulePolicy`] trait so alternative orders can share the whole
//! scheduling substrate — dependence graph, pipeline scoreboard,
//! bound cache — and differ only in how two ready candidates compare.
//!
//! # Pruning-soundness contract
//!
//! The scheduler caches, per candidate, a lower bound on its next
//! stall count (§3.2: issuing other instructions never moves a
//! candidate's earliest slot *earlier*). When a candidate's optimistic
//! bound already exceeds the round leader's stalls, the fresh pipeline
//! query can be skipped — but only if losing on stalls alone implies
//! losing the comparison. A policy opts into that skip via
//! [`SchedulePolicy::prunes_on_stall_bound`]; it must return `true`
//! only when its order is *monotone in stalls*, i.e. stalls is the
//! primary key, so a candidate with strictly more stalls than the
//! leader can never win (nor tie, since `bound > leader.stalls`
//! implies `stalls > leader.stalls`). [`ChainFirst`] compares chain
//! length first and therefore must not prune.

use std::fmt;

/// One ready instruction as seen by a policy: everything the
/// scheduler knows about it this round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Candidate {
    /// Stall cycles before this instruction could issue now, from the
    /// pipeline scoreboard query.
    pub stalls: u64,
    /// Length (cycles) of the dependence chain from this instruction
    /// to the end of the block (the paper's backward first pass).
    pub chain_to_end: u32,
    /// Position in the original code sequence — the final tie-break,
    /// which also makes every comparison a strict total order.
    pub index: usize,
    /// Whether some consumer of this instruction also waits on a
    /// long-latency (≥ 2 cycle) producer — i.e. the consumer sits in
    /// a load shadow and this instruction's result is not the
    /// bottleneck. Only computed when
    /// [`SchedulePolicy::uses_load_shadow`] returns `true`; `false`
    /// otherwise.
    pub load_shadowed: bool,
}

impl Candidate {
    fn stalls_key(&self) -> (u64, std::cmp::Reverse<u32>, usize) {
        (
            self.stalls,
            std::cmp::Reverse(self.chain_to_end),
            self.index,
        )
    }
}

/// A ready-list selection rule for the list scheduler's forward pass.
///
/// Implementations must define a strict total order (the original
/// index participates in every key, so distinct candidates never
/// compare equal under `better` in both directions).
pub trait SchedulePolicy: fmt::Debug + Send + Sync {
    /// Short stable name, used in reports and ablation labels.
    fn name(&self) -> &'static str;

    /// `true` when `a` should be scheduled in preference to `b`.
    fn better(&self, a: &Candidate, b: &Candidate) -> bool;

    /// Whether the §3.2 monotone bound skip is sound for this order
    /// (see the module docs). Must return `true` only when stalls is
    /// the primary comparison key.
    fn prunes_on_stall_bound(&self) -> bool;

    /// Whether `a` and `b` are tied up to the positional tie-break —
    /// the set a lookahead policy re-ranks by simulation. The default
    /// (`false`) means the base order is always decisive.
    fn ties(&self, a: &Candidate, b: &Candidate) -> bool {
        let _ = (a, b);
        false
    }

    /// How many tied candidates to try one step ahead (0 = none).
    fn lookahead(&self) -> usize {
        0
    }

    /// Whether the scheduler should compute [`Candidate::load_shadowed`]
    /// (it costs a pass over the dependence edges per block).
    fn uses_load_shadow(&self) -> bool {
        false
    }
}

/// The paper's rule: fewest stalls, then longest chain to the block
/// end, then original order. The default policy; its output is pinned
/// byte-for-byte by the golden tables.
#[derive(Debug, Clone, Copy, Default)]
pub struct StallsFirst;

impl SchedulePolicy for StallsFirst {
    fn name(&self) -> &'static str {
        "stalls-first"
    }
    fn better(&self, a: &Candidate, b: &Candidate) -> bool {
        a.stalls_key() < b.stalls_key()
    }
    fn prunes_on_stall_bound(&self) -> bool {
        true
    }
}

/// Classic critical-path list scheduling: longest chain first, then
/// fewest stalls, then original order. Chain length is the primary
/// key, so the stall-bound skip is unsound here and disabled.
#[derive(Debug, Clone, Copy, Default)]
pub struct ChainFirst;

impl SchedulePolicy for ChainFirst {
    fn name(&self) -> &'static str {
        "chain-first"
    }
    fn better(&self, a: &Candidate, b: &Candidate) -> bool {
        (std::cmp::Reverse(a.chain_to_end), a.stalls, a.index)
            < (std::cmp::Reverse(b.chain_to_end), b.stalls, b.index)
    }
    fn prunes_on_stall_bound(&self) -> bool {
        false
    }
}

/// Load-delay-aware selection (after Diavastos & Carlson):
/// fewest stalls first, but among equal-stall candidates prefer
/// instructions whose consumers are *not* already covered by a load
/// shadow — feeding a consumer that must wait on a long-latency
/// producer anyway buys nothing, so such candidates are deprioritized
/// toward the shadow cycles where they are free.
#[derive(Debug, Clone, Copy, Default)]
pub struct LoadDelay;

impl SchedulePolicy for LoadDelay {
    fn name(&self) -> &'static str {
        "load-delay"
    }
    fn better(&self, a: &Candidate, b: &Candidate) -> bool {
        (
            a.stalls,
            a.load_shadowed,
            std::cmp::Reverse(a.chain_to_end),
            a.index,
        ) < (
            b.stalls,
            b.load_shadowed,
            std::cmp::Reverse(b.chain_to_end),
            b.index,
        )
    }
    fn prunes_on_stall_bound(&self) -> bool {
        true
    }
    fn uses_load_shadow(&self) -> bool {
        true
    }
}

/// [`StallsFirst`] with one-step lookahead on ties: when several
/// candidates tie on (stalls, chain), the scheduler clones the
/// pipeline scoreboard, issues each of the top-`k` tied candidates,
/// and picks the one whose best follow-up candidate stalls least.
/// The base order is monotone in stalls, so the bound skip stays
/// sound (a pruned candidate has strictly more stalls and can never
/// enter the tie set).
#[derive(Debug, Clone, Copy)]
pub struct LookaheadK {
    /// How many tied candidates to simulate ahead.
    pub k: usize,
}

impl SchedulePolicy for LookaheadK {
    fn name(&self) -> &'static str {
        "lookahead"
    }
    fn better(&self, a: &Candidate, b: &Candidate) -> bool {
        a.stalls_key() < b.stalls_key()
    }
    fn prunes_on_stall_bound(&self) -> bool {
        true
    }
    fn ties(&self, a: &Candidate, b: &Candidate) -> bool {
        a.stalls == b.stalls && a.chain_to_end == b.chain_to_end
    }
    fn lookahead(&self) -> usize {
        self.k
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(stalls: u64, chain: u32, index: usize) -> Candidate {
        Candidate {
            stalls,
            chain_to_end: chain,
            index,
            load_shadowed: false,
        }
    }

    #[test]
    fn stalls_first_orders_like_the_paper() {
        let p = StallsFirst;
        assert!(p.better(&cand(0, 1, 5), &cand(1, 9, 0)), "fewest stalls");
        assert!(p.better(&cand(1, 9, 5), &cand(1, 1, 0)), "longest chain");
        assert!(p.better(&cand(1, 9, 0), &cand(1, 9, 5)), "original order");
    }

    #[test]
    fn chain_first_puts_chain_before_stalls() {
        let p = ChainFirst;
        assert!(p.better(&cand(7, 9, 5), &cand(0, 1, 0)));
        assert!(
            !p.prunes_on_stall_bound(),
            "chain order is not stall-monotone"
        );
    }

    #[test]
    fn load_delay_breaks_stall_ties_by_shadow() {
        let p = LoadDelay;
        let shadowed = Candidate {
            load_shadowed: true,
            ..cand(1, 9, 0)
        };
        assert!(
            p.better(&cand(1, 1, 5), &shadowed),
            "unshadowed wins a stall tie even with a shorter chain"
        );
        assert!(
            p.better(&cand(0, 1, 5), &cand(1, 9, 0)),
            "stalls stay primary"
        );
    }

    #[test]
    fn lookahead_ties_match_its_base_order() {
        let p = LookaheadK { k: 3 };
        assert!(p.ties(&cand(1, 4, 0), &cand(1, 4, 9)));
        assert!(!p.ties(&cand(1, 4, 0), &cand(1, 5, 9)));
        assert!(!p.ties(&cand(0, 4, 0), &cand(1, 4, 9)));
        assert_eq!(p.lookahead(), 3);
    }

    #[test]
    fn every_policy_is_a_strict_order() {
        let policies: [&dyn SchedulePolicy; 4] =
            [&StallsFirst, &ChainFirst, &LoadDelay, &LookaheadK { k: 2 }];
        let a = cand(1, 4, 0);
        let b = cand(1, 4, 1);
        for p in policies {
            assert!(!p.better(&a, &a), "{}: irreflexive", p.name());
            assert!(
                p.better(&a, &b) ^ p.better(&b, &a),
                "{}: total on distinct candidates",
                p.name()
            );
        }
    }
}
