//! The branch-and-bound exact scheduler — the optimality oracle.
//!
//! The paper's list scheduler (§4) is greedy; PR 3 could only pin its
//! anomaly *empirically*. This module turns that bound into a proven
//! one: an implicit enumeration over all dependence-legal orders of a
//! block body, driven by the same precompiled reservation tables and
//! [`DepGraph`] the list scheduler uses, with no external solver.
//!
//! Three devices make the search practical at block sizes up to
//! [`EXACT_MAX_BLOCK`]:
//!
//! * **Admissible lower bounds.** At every partial schedule the
//!   remaining latency is bounded below by the dependence critical
//!   path (earliest feasible issue plus chain-to-end, per remaining
//!   instruction) and by resource height (the remaining first-row unit
//!   demand divided by the machine's per-cycle unit counts). A subtree
//!   whose bound cannot strictly beat the incumbent is dead.
//! * **Dominance pruning.** Two partial schedules over the same
//!   instruction set whose scoreboards serialize to the same
//!   issue-cycle-relative [`PipelineState::context_key`] evolve
//!   identically; only the visit that reached the state at the
//!   earliest cycle can still improve on what it already explored.
//! * **A warm incumbent.** The search starts from the list schedule,
//!   so it never returns a worse order and usually proves the greedy
//!   result optimal at the root bound without expanding a node.
//!
//! The search is budgeted: after [`SchedOptions::exact_budget`] nodes
//! (issues tried) it stops and keeps the best schedule seen — at worst
//! the list incumbent — with [`ExactOutcome::budget_exhausted`] set so
//! callers can tell a proven optimum from a timeout.
//!
//! [`SchedOptions::exact_budget`]: crate::SchedOptions::exact_budget

use std::collections::hash_map::Entry;
use std::collections::HashMap;

use eel_edit::Tagged;
use eel_pipeline::{class_of, evaluate_block, MachineModel, PipelineState, PreparedInsn};
use eel_sparc::Instruction;

use crate::dep::{DepGraph, DepKind};

/// Largest body (in instructions) the search will attempt. Bigger
/// blocks immediately fall back to the incumbent with
/// [`ExactOutcome::budget_exhausted`] set: the state space beyond this
/// defeats the bounds, and the paper's blocks rarely come close.
pub const EXACT_MAX_BLOCK: usize = 32;

/// Default per-block node budget ([`crate::SchedOptions::exact_budget`]).
pub const DEFAULT_EXACT_BUDGET: u32 = 65_536;

/// The oracle's answer for one block body.
#[derive(Debug, Clone)]
pub struct ExactOutcome {
    /// The best schedule found. Never slower than the incumbent the
    /// search started from; exactly the incumbent when the budget was
    /// exhausted before anything better surfaced.
    pub body: Vec<Tagged>,
    /// Issue latency of `body` on an empty pipe (cycles).
    pub latency: u64,
    /// Issue latency of the list-scheduled incumbent.
    pub list_latency: u64,
    /// Whether `latency` is a proven minimum over all dependence-legal
    /// orders (the search completed within budget).
    pub proven_optimal: bool,
    /// The node budget ran out — or the body exceeded
    /// [`EXACT_MAX_BLOCK`] — and the search was cut short.
    pub budget_exhausted: bool,
    /// Search nodes expanded (issue attempts).
    pub nodes: u64,
    /// Stall queries the search spent on cloned scoreboards.
    pub queries: u64,
}

impl ExactOutcome {
    /// Cycles the list schedule left on the table for this block.
    pub fn gap(&self) -> u64 {
        self.list_latency - self.latency
    }
}

/// Issue latency of a body replayed on an empty pipe.
fn latency_of(model: &MachineModel, body: &[Tagged]) -> u64 {
    if body.is_empty() {
        return 0;
    }
    let insns: Vec<Instruction> = body.iter().map(|t| t.insn).collect();
    evaluate_block(model, &insns).issue_latency()
}

/// Branch-and-bound search for a minimum-latency order of `body`.
///
/// `graph` must be the dependence graph of `body` in its given order;
/// `incumbent` must be a dependence-legal schedule of the same
/// instructions (the list scheduler's output). The result is never
/// slower than `incumbent`, and is a proven optimum unless
/// [`ExactOutcome::budget_exhausted`] reports otherwise.
pub fn exact_schedule(
    model: &MachineModel,
    body: &[Tagged],
    graph: &DepGraph,
    incumbent: &[Tagged],
    budget: u64,
) -> ExactOutcome {
    debug_assert_eq!(body.len(), incumbent.len());
    let n = body.len();
    let list_latency = latency_of(model, incumbent);
    if n <= 1 {
        return ExactOutcome {
            body: incumbent.to_vec(),
            latency: list_latency,
            list_latency,
            proven_optimal: true,
            budget_exhausted: false,
            nodes: 0,
            queries: 0,
        };
    }
    if n > EXACT_MAX_BLOCK {
        return ExactOutcome {
            body: incumbent.to_vec(),
            latency: list_latency,
            list_latency,
            proven_optimal: false,
            budget_exhausted: true,
            nodes: 0,
            queries: 0,
        };
    }

    // Predecessor edges per node, for the critical-path bound — with
    // *pipeline-enforced* issue distances, which are not the graph's
    // `min_cycles`. A RAW edge's distance is exactly the scoreboard's
    // hazard bound; a WAW edge is enforced through the producer's
    // availability offset; WAR, memory, and barrier edges only order
    // the sequence (in-order issue makes that distance 0). Using the
    // graph's ordering weights here would overestimate — e.g. a
    // zero-availability `sethi` WAW-followed by an `alu` can legally
    // co-issue — and an inadmissible bound prunes true optima. Edges
    // always point from a lower original index to a higher one, so
    // original order is a topological order of the remaining set.
    let enforced = |e: &crate::dep::DepEdge| -> u32 {
        match e.kind {
            DepKind::Raw(_) => e.min_cycles,
            DepKind::Waw(r) => {
                let class = class_of(r);
                let ai = model
                    .timing(model.group_id_of(&body[e.from].insn))
                    .avail_offset(class);
                let aj = model
                    .timing(model.group_id_of(&body[e.to].insn))
                    .avail_offset(class);
                (ai + 1).saturating_sub(aj)
            }
            DepKind::War(_) | DepKind::Memory | DepKind::Barrier => 0,
        }
    };
    let mut preds: Vec<Vec<(usize, u32)>> = vec![Vec::new(); n];
    for e in &graph.edges {
        preds[e.to].push((e.from, enforced(e)));
    }
    // Chain-to-end over the enforced weights (the ordering-weighted
    // `DepGraph::chain_to_end` would overestimate the same way).
    let mut cte = vec![0u32; n];
    for i in (0..n).rev() {
        for e in graph.succ_edges(i) {
            cte[i] = cte[i].max(enforced(e) + cte[e.to]);
        }
    }
    // First-row (issue-cycle) unit demand per instruction, for the
    // resource-height bound.
    let row0: Vec<Vec<(usize, u32)>> = body
        .iter()
        .map(|t| model.usage(&t.insn).first().cloned().unwrap_or_default())
        .collect();

    let mut s = Search {
        model,
        body,
        prepared: body.iter().map(|t| model.prepare(&t.insn)).collect(),
        preds,
        graph,
        cte,
        row0,
        unit_counts: model.unit_counts(),
        best: list_latency,
        best_order: Vec::new(),
        seen: HashMap::new(),
        nodes: 0,
        budget,
        exhausted: false,
        queries: 0,
        issue_at: vec![0; n],
        est: vec![0; n],
        unit_demand: vec![0; model.unit_kinds()],
        key_buf: Vec::new(),
    };

    // The root bound proves most list schedules optimal outright.
    if s.lower_bound(0, 0) < s.best {
        let pipe = PipelineState::new(model);
        let mut ready_preds: Vec<u32> = graph.pred_counts().to_vec();
        let mut order: Vec<usize> = Vec::with_capacity(n);
        s.dfs(&pipe, 0, &mut order, &mut ready_preds);
    }

    let (out, latency) = if s.best_order.is_empty() {
        (incumbent.to_vec(), list_latency)
    } else {
        (s.best_order.iter().map(|&i| body[i]).collect(), s.best)
    };
    debug_assert_eq!(
        latency_of(model, &out),
        latency,
        "search mistimed its own pick"
    );
    ExactOutcome {
        body: out,
        latency,
        list_latency,
        proven_optimal: !s.exhausted,
        budget_exhausted: s.exhausted,
        nodes: s.nodes,
        queries: s.queries,
    }
}

struct Search<'a> {
    model: &'a MachineModel,
    body: &'a [Tagged],
    prepared: Vec<PreparedInsn>,
    /// `(predecessor, min issue distance)` per node.
    preds: Vec<Vec<(usize, u32)>>,
    graph: &'a DepGraph,
    /// Chain-to-end lengths over pipeline-enforced edge distances.
    cte: Vec<u32>,
    /// Issue-cycle `(unit, copies)` demand per node.
    row0: Vec<Vec<(usize, u32)>>,
    unit_counts: Vec<u32>,
    /// Incumbent latency: strictly beat it or die.
    best: u64,
    /// Original indices of the best order found; empty while the
    /// initial (external) incumbent still stands.
    best_order: Vec<usize>,
    /// `[mask, context_key...] -> earliest cycle seen` — the dominance
    /// table. Keys store the full serialized scoreboard, not a hash,
    /// so a collision can never prune a live subtree.
    seen: HashMap<Vec<u32>, u64>,
    nodes: u64,
    budget: u64,
    exhausted: bool,
    queries: u64,
    /// Absolute issue cycle per node on the *current* DFS path; only
    /// entries whose mask bit is set are meaningful.
    issue_at: Vec<u64>,
    /// Scratch: earliest dependence-feasible issue per remaining node.
    est: Vec<u64>,
    /// Scratch: remaining first-row demand per unit.
    unit_demand: Vec<u64>,
    /// Scratch: context-key serialization buffer.
    key_buf: Vec<u32>,
}

impl Search<'_> {
    /// An admissible lower bound on the final issue latency from a
    /// state where `mask` is scheduled and the scoreboard sits at
    /// `cycle`: max of the dependence critical path and the resource
    /// height of the remaining set. Never overestimates — resources
    /// already reserved by the prefix only delay the true optimum
    /// further.
    fn lower_bound(&mut self, mask: u32, cycle: u64) -> u64 {
        let n = self.body.len();
        // Some instruction still has to issue at or after `cycle`.
        let mut lb = cycle + 1;
        for i in 0..n {
            if mask & (1u32 << i) != 0 {
                continue;
            }
            let mut est = cycle;
            for &(p, lat) in &self.preds[i] {
                let at = if mask & (1u32 << p) != 0 {
                    self.issue_at[p]
                } else {
                    self.est[p]
                };
                est = est.max(at + u64::from(lat));
            }
            self.est[i] = est;
            lb = lb.max(est + u64::from(self.cte[i]) + 1);
        }
        for d in self.unit_demand.iter_mut() {
            *d = 0;
        }
        for i in 0..n {
            if mask & (1u32 << i) != 0 {
                continue;
            }
            for &(u, c) in &self.row0[i] {
                self.unit_demand[u] += u64::from(c);
            }
        }
        for (u, &d) in self.unit_demand.iter().enumerate() {
            let cap = u64::from(self.unit_counts[u]);
            if d > 0 && cap > 0 {
                // Issue-cycle demand lands exactly at issue cycles, at
                // most `cap` copies per cycle, all at or after `cycle`:
                // the last such cycle is `cycle + ceil(d / cap) - 1`.
                lb = lb.max(cycle + d.div_ceil(cap));
            }
        }
        lb
    }

    fn dfs(
        &mut self,
        pipe: &PipelineState,
        mask: u32,
        order: &mut Vec<usize>,
        ready_preds: &mut Vec<u32>,
    ) {
        let n = self.body.len();
        if order.len() == n {
            let latency = pipe.cycle() + 1;
            if latency < self.best {
                self.best = latency;
                self.best_order = order.clone();
            }
            return;
        }
        // Expand ready instructions in the list heuristic's order
        // (fewest stalls, longest chain, original index) so strong
        // incumbents surface before the bounds are tested against
        // weaker ones.
        let q0 = pipe.stall_queries();
        let mut cands: Vec<(u64, std::cmp::Reverse<u32>, usize)> = Vec::new();
        for (i, &preds) in ready_preds.iter().enumerate().take(n) {
            if mask & (1u32 << i) != 0 || preds != 0 {
                continue;
            }
            let stalls = pipe.stalls_prepared(self.model, &self.body[i].insn, &self.prepared[i]);
            cands.push((stalls, std::cmp::Reverse(self.cte[i]), i));
        }
        self.queries += pipe.stall_queries() - q0;
        cands.sort_unstable();
        for (_, _, i) in cands {
            if self.exhausted {
                return;
            }
            if self.nodes >= self.budget {
                self.exhausted = true;
                return;
            }
            self.nodes += 1;
            let mut child = pipe.clone();
            let c0 = child.stall_queries();
            let info = child.issue_prepared(self.model, &self.body[i].insn, &self.prepared[i]);
            self.queries += child.stall_queries() - c0;
            self.issue_at[i] = info.cycle;
            let child_mask = mask | (1u32 << i);
            if (child_mask.count_ones() as usize) < n {
                if self.lower_bound(child_mask, child.cycle()) >= self.best {
                    continue;
                }
                // Dominance: same scheduled set + same relative
                // scoreboard evolve identically, so only the visit
                // that got here earliest can still find something new.
                child.context_key(&mut self.key_buf);
                let mut key = Vec::with_capacity(self.key_buf.len() + 1);
                key.push(child_mask);
                key.extend_from_slice(&self.key_buf);
                match self.seen.entry(key) {
                    Entry::Occupied(mut e) => {
                        if *e.get() <= child.cycle() {
                            continue;
                        }
                        e.insert(child.cycle());
                    }
                    Entry::Vacant(e) => {
                        e.insert(child.cycle());
                    }
                }
            } else if child.cycle() + 1 >= self.best {
                // A completing issue that fails to improve needs no
                // recursion to say so.
                continue;
            }
            order.push(i);
            for e in self.graph.succ_edges(i) {
                ready_preds[e.to] -= 1;
            }
            self.dfs(&child, child_mask, order, ready_preds);
            for e in self.graph.succ_edges(i) {
                ready_preds[e.to] += 1;
            }
            order.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eel_pipeline::MachineModel;
    use eel_sparc::{Address, AluOp, Instruction, IntReg, MemWidth, Operand};

    fn orig(i: Instruction) -> Tagged {
        Tagged::original(i)
    }

    fn add(rs1: IntReg, rd: IntReg) -> Instruction {
        Instruction::Alu {
            op: AluOp::Add,
            rs1,
            src2: Operand::imm(1),
            rd,
        }
    }

    fn ld(base: IntReg, rd: IntReg) -> Instruction {
        Instruction::Load {
            width: MemWidth::Word,
            addr: Address::base_imm(base, 0),
            rd,
        }
    }

    fn run(model: &MachineModel, body: Vec<Tagged>, budget: u64) -> ExactOutcome {
        let graph = DepGraph::build(model, &body, true);
        exact_schedule(model, &body, &graph, &body, budget)
    }

    /// Two independent load-use pairs: back to back each pair stalls,
    /// interleaved the loads' shadows hide both uses.
    fn two_pairs() -> Vec<Tagged> {
        vec![
            orig(ld(IntReg::O0, IntReg::O1)),
            orig(add(IntReg::O1, IntReg::O2)),
            orig(ld(IntReg::O3, IntReg::O4)),
            orig(add(IntReg::O4, IntReg::O5)),
        ]
    }

    #[test]
    fn interleavable_pairs_are_solved_optimally() {
        let model = MachineModel::ultrasparc();
        let body = two_pairs();
        let unscheduled = latency_of(&model, &body);
        let out = run(&model, body, 1 << 16);
        assert!(out.proven_optimal);
        assert!(!out.budget_exhausted);
        assert!(
            out.latency < unscheduled,
            "{} !< {unscheduled}",
            out.latency
        );
        assert_eq!(out.latency, latency_of(&model, &out.body));
    }

    #[test]
    fn zero_budget_returns_the_incumbent() {
        let model = MachineModel::ultrasparc();
        let body = two_pairs();
        let out = run(&model, body.clone(), 0);
        // This block's root bound cannot prove the unscheduled order
        // optimal, so the search must start — and die instantly.
        assert!(out.budget_exhausted);
        assert!(!out.proven_optimal);
        assert_eq!(out.body, body);
        assert_eq!(out.latency, out.list_latency);
    }

    #[test]
    fn oversized_blocks_fall_back_to_the_incumbent() {
        let model = MachineModel::ultrasparc();
        let body: Vec<Tagged> = (0..EXACT_MAX_BLOCK + 1)
            .map(|_| orig(add(IntReg::O0, IntReg::O1)))
            .collect();
        let out = run(&model, body.clone(), 1 << 16);
        assert!(out.budget_exhausted);
        assert!(!out.proven_optimal);
        assert_eq!(out.nodes, 0);
        assert_eq!(out.body, body);
    }

    #[test]
    fn root_bound_proves_dependence_chains_without_search() {
        // A pure serial chain has exactly one legal order; the
        // critical-path bound at the root should settle it node-free.
        let model = MachineModel::ultrasparc();
        let body = vec![
            orig(add(IntReg::O0, IntReg::O1)),
            orig(add(IntReg::O1, IntReg::O2)),
            orig(add(IntReg::O2, IntReg::O3)),
        ];
        let out = run(&model, body, 1 << 16);
        assert!(out.proven_optimal);
        assert_eq!(out.gap(), 0);
        assert_eq!(out.nodes, 0, "root bound should close a serial chain");
    }
}
