//! Dependence analysis for local scheduling.
//!
//! Builds the DAG of register (RAW/WAR/WAW) and memory dependences
//! over a block body. Memory conservatism follows the paper, §4:
//! loads and stores *from the original code* are assumed to access the
//! same address; loads and stores *in instrumentation code* are
//! assumed to access the same address as each other but a *different*
//! address from original accesses — profiling counters live in their
//! own data area, so instrumentation memory operations move freely
//! past original ones.

use eel_edit::Tagged;
use eel_pipeline::{class_of, MachineModel};
use eel_sadl::RegClass;
use eel_sparc::{Resource, ResourceList};

/// One dependence edge: instruction `to` must issue at least
/// `min_cycles` after instruction `from`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DepEdge {
    /// Index of the earlier instruction.
    pub from: usize,
    /// Index of the later instruction.
    pub to: usize,
    /// Minimum issue-cycle distance (0 = same cycle allowed).
    pub min_cycles: u32,
    /// Why the edge exists.
    pub kind: DepKind,
}

/// The reason two instructions are ordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DepKind {
    /// Read-after-write on a register resource.
    Raw(Resource),
    /// Write-after-read on a register resource.
    War(Resource),
    /// Write-after-write on a register resource.
    Waw(Resource),
    /// A conservative memory ordering (same conflict domain).
    Memory,
    /// An instruction with side effects the model cannot reorder
    /// around (`save`/`restore`/`Ticc`/unknown words).
    Barrier,
}

/// The dependence DAG of one block body.
#[derive(Debug, Clone)]
pub struct DepGraph {
    n: usize,
    /// Edges sorted by `from`.
    pub edges: Vec<DepEdge>,
    /// `succs[i]` — indices into `edges` leaving node `i`.
    succs: Vec<Vec<usize>>,
    /// `pred_count[i]` — number of incoming edges.
    pred_count: Vec<u32>,
}

impl DepGraph {
    /// Analyzes a block body into its dependence DAG.
    ///
    /// `instr_mem_independent` enables the paper's assumption that
    /// instrumentation memory traffic never conflicts with original
    /// memory traffic. Turning it off is the paper's "option to limit
    /// the movement of instrumentation code".
    pub fn build(model: &MachineModel, body: &[Tagged], instr_mem_independent: bool) -> DepGraph {
        let n = body.len();
        let mut edges: Vec<DepEdge> = Vec::new();

        // Resolve each instruction against the model *once*. The pair
        // closure below is O(n²); re-fetching the timing group (a
        // name-keyed map lookup) and re-extracting operand lists (heap
        // `Vec`s) per pair dominated its cost.
        struct Node {
            uses: ResourceList,
            defs: ResourceList,
            /// Per class: issue-relative operand read cycle.
            rc: [u32; RegClass::COUNT],
            /// Per class: issue-relative result-available offset
            /// (`write_cycle + 1`, the hazard default baked in).
            avail: [u32; RegClass::COUNT],
            barrier: bool,
        }
        let nodes: Vec<Node> = body
            .iter()
            .map(|t| {
                let timing = model.timing(model.group_id_of(&t.insn));
                let mut rc = [0u32; RegClass::COUNT];
                let mut avail = [0u32; RegClass::COUNT];
                for class in RegClass::ALL {
                    rc[class.index()] = timing.read_cycle(class);
                    avail[class.index()] = timing.avail_offset(class);
                }
                Node {
                    uses: t.insn.uses_fixed(),
                    defs: t.insn.defs_fixed(),
                    rc,
                    avail,
                    barrier: t.insn.is_scheduling_barrier(),
                }
            })
            .collect();

        // Latency of a RAW pair: producer's value is computed in cycle
        // `wc` (available the cycle after, i.e. at its avail offset);
        // the consumer reads in its own cycle `rc`.
        // consumer_issue - producer_issue >= (wc+1) - rc.
        let raw_latency = |pi: usize, ci: usize, r: Resource| -> u32 {
            let class = class_of(r).index();
            nodes[pi].avail[class].saturating_sub(nodes[ci].rc[class])
        };

        let mem_conflict = |a: &Tagged, b: &Tagged| -> bool {
            if !(a.insn.is_mem() && b.insn.is_mem()) {
                return false;
            }
            if !(a.insn.is_store() || b.insn.is_store()) {
                return false; // two loads never conflict
            }
            if instr_mem_independent {
                a.origin == b.origin
            } else {
                true
            }
        };

        for j in 0..n {
            let tj = &body[j];
            for (i, ti) in body.iter().enumerate().take(j) {
                let mut best: Option<DepEdge> = None;
                let mut consider = |min_cycles: u32, kind: DepKind| {
                    if best.is_none_or(|b| min_cycles > b.min_cycles) {
                        best = Some(DepEdge {
                            from: i,
                            to: j,
                            min_cycles,
                            kind,
                        });
                    }
                };

                if nodes[i].barrier || nodes[j].barrier {
                    consider(1, DepKind::Barrier);
                }
                for r in &nodes[i].defs {
                    if nodes[j].uses.contains(&r) {
                        consider(raw_latency(i, j, r), DepKind::Raw(r));
                    }
                    if nodes[j].defs.contains(&r) {
                        consider(1, DepKind::Waw(r));
                    }
                }
                for r in &nodes[i].uses {
                    if nodes[j].defs.contains(&r) {
                        consider(0, DepKind::War(r));
                    }
                }
                if mem_conflict(ti, tj) {
                    consider(1, DepKind::Memory);
                }

                if let Some(e) = best {
                    edges.push(e);
                }
            }
        }

        let mut succs = vec![Vec::new(); n];
        let mut pred_count = vec![0u32; n];
        for (k, e) in edges.iter().enumerate() {
            succs[e.from].push(k);
            pred_count[e.to] += 1;
        }
        DepGraph {
            n,
            edges,
            succs,
            pred_count,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the body was empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Incoming-edge count per node (for ready-list initialization).
    pub fn pred_counts(&self) -> &[u32] {
        &self.pred_count
    }

    /// Edges leaving node `i`.
    pub fn succ_edges(&self, i: usize) -> impl Iterator<Item = &DepEdge> {
        self.succs[i].iter().map(move |&k| &self.edges[k])
    }

    /// Whether there is any dependence path from `i` to `j` (`i < j`).
    /// Used by tests to check order preservation.
    pub fn depends(&self, i: usize, j: usize) -> bool {
        let mut stack = vec![i];
        let mut seen = vec![false; self.n];
        while let Some(x) = stack.pop() {
            if x == j {
                return true;
            }
            if seen[x] {
                continue;
            }
            seen[x] = true;
            for e in self.succ_edges(x) {
                stack.push(e.to);
            }
        }
        false
    }

    /// The paper's first pass: the length (in cycles) of the
    /// dependence chain between every instruction and the end of the
    /// block, considering only the stalls between data-dependent
    /// instructions. Computed backwards.
    pub fn chain_to_end(&self) -> Vec<u32> {
        let mut cte = vec![0u32; self.n];
        for i in (0..self.n).rev() {
            for e in self.succ_edges(i) {
                cte[i] = cte[i].max(e.min_cycles + cte[e.to]);
            }
        }
        cte
    }

    /// For every instruction, whether some RAW consumer of it also
    /// waits on a *different* long-latency (≥ 2 cycle) producer — the
    /// consumer sits in a load shadow, so this instruction's result
    /// arriving early buys nothing. The `LoadDelay` policy uses this
    /// to deprioritize such producers toward the shadow cycles.
    pub fn load_shadowed(&self) -> Vec<bool> {
        // RAW predecessor edges per consumer, as (producer, latency).
        let mut raw_preds: Vec<Vec<(usize, u32)>> = vec![Vec::new(); self.n];
        for e in &self.edges {
            if matches!(e.kind, DepKind::Raw(_)) {
                raw_preds[e.to].push((e.from, e.min_cycles));
            }
        }
        let mut shadowed = vec![false; self.n];
        for preds in &raw_preds {
            for &(i, _) in preds {
                if preds.iter().any(|&(l, c)| l != i && c >= 2) {
                    shadowed[i] = true;
                }
            }
        }
        shadowed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eel_edit::Tagged;
    use eel_sparc::{Address, AluOp, Instruction, IntReg, MemWidth, Operand};

    fn orig(i: Instruction) -> Tagged {
        Tagged::original(i)
    }

    fn inst(i: Instruction) -> Tagged {
        Tagged::instrumentation(i)
    }

    fn add(rs1: IntReg, rd: IntReg) -> Instruction {
        Instruction::Alu {
            op: AluOp::Add,
            rs1,
            src2: Operand::imm(1),
            rd,
        }
    }

    fn ld(base: IntReg, rd: IntReg) -> Instruction {
        Instruction::Load {
            width: MemWidth::Word,
            addr: Address::base_imm(base, 0),
            rd,
        }
    }

    fn st(src: IntReg, base: IntReg) -> Instruction {
        Instruction::Store {
            width: MemWidth::Word,
            src,
            addr: Address::base_imm(base, 0),
        }
    }

    fn model() -> MachineModel {
        MachineModel::ultrasparc()
    }

    #[test]
    fn raw_edge_with_latency() {
        let body = vec![
            orig(add(IntReg::O0, IntReg::O1)),
            orig(add(IntReg::O1, IntReg::O2)),
        ];
        let g = DepGraph::build(&model(), &body, true);
        assert_eq!(g.edges.len(), 1);
        let e = g.edges[0];
        assert!(matches!(e.kind, DepKind::Raw(Resource::Int(r)) if r == IntReg::O1));
        assert_eq!(e.min_cycles, 1, "ALU forwards after one cycle");
    }

    #[test]
    fn load_use_latency_is_two() {
        let body = vec![
            orig(ld(IntReg::O0, IntReg::O1)),
            orig(add(IntReg::O1, IntReg::O2)),
        ];
        let g = DepGraph::build(&model(), &body, true);
        assert_eq!(g.edges[0].min_cycles, 2, "UltraSPARC load-use");
    }

    #[test]
    fn independent_instructions_have_no_edges() {
        let body = vec![
            orig(add(IntReg::O0, IntReg::O1)),
            orig(add(IntReg::O2, IntReg::O3)),
        ];
        let g = DepGraph::build(&model(), &body, true);
        assert!(g.edges.is_empty());
    }

    #[test]
    fn war_and_waw_edges() {
        // i0 reads %o1; i1 writes %o1 (WAR). i2 writes %o1 again (WAW).
        let body = vec![
            orig(add(IntReg::O1, IntReg::O2)),
            orig(add(IntReg::O3, IntReg::O1)),
            orig(add(IntReg::O4, IntReg::O1)),
        ];
        let g = DepGraph::build(&model(), &body, true);
        assert!(g
            .edges
            .iter()
            .any(|e| e.from == 0 && e.to == 1 && matches!(e.kind, DepKind::War(_))));
        assert!(g
            .edges
            .iter()
            .any(|e| e.from == 1 && e.to == 2 && matches!(e.kind, DepKind::Waw(_))));
    }

    #[test]
    fn original_memory_conflicts_conservatively() {
        // The paper: loads and stores from the original code are
        // assumed to access the same address.
        let body = vec![
            orig(st(IntReg::O1, IntReg::O0)),
            orig(ld(IntReg::O2, IntReg::O3)),
        ];
        let g = DepGraph::build(&model(), &body, true);
        assert!(g.edges.iter().any(|e| matches!(e.kind, DepKind::Memory)));
    }

    #[test]
    fn two_loads_never_conflict() {
        let body = vec![
            orig(ld(IntReg::O0, IntReg::O1)),
            orig(ld(IntReg::O2, IntReg::O3)),
        ];
        let g = DepGraph::build(&model(), &body, true);
        assert!(g.edges.iter().all(|e| !matches!(e.kind, DepKind::Memory)));
    }

    #[test]
    fn instrumentation_memory_independent_of_original() {
        // The paper: instrumentation loads/stores access a different
        // address from original ones, so they move freely.
        let body = vec![
            orig(st(IntReg::O1, IntReg::O0)),
            inst(ld(IntReg::G1, IntReg::G2)),
        ];
        let g = DepGraph::build(&model(), &body, true);
        assert!(
            g.edges.iter().all(|e| !matches!(e.kind, DepKind::Memory)),
            "no cross-domain memory edge: {:?}",
            g.edges
        );
        // But turning the option off restores full conservatism.
        let g = DepGraph::build(&model(), &body, false);
        assert!(g.edges.iter().any(|e| matches!(e.kind, DepKind::Memory)));
    }

    #[test]
    fn instrumentation_memory_conflicts_with_itself() {
        let body = vec![
            inst(ld(IntReg::G1, IntReg::G2)),
            inst(st(IntReg::G2, IntReg::G1)),
        ];
        let g = DepGraph::build(&model(), &body, true);
        assert!(g.edges.iter().any(|e| e.from == 0 && e.to == 1));
    }

    #[test]
    fn barriers_order_everything() {
        let save = Instruction::Save {
            rs1: IntReg::SP,
            src2: Operand::imm(-96),
            rd: IntReg::SP,
        };
        let body = vec![
            orig(add(IntReg::O0, IntReg::O1)),
            orig(save),
            orig(add(IntReg::O2, IntReg::O3)),
        ];
        let g = DepGraph::build(&model(), &body, true);
        assert!(g.depends(0, 1));
        assert!(g.depends(1, 2));
    }

    #[test]
    fn chain_to_end_accumulates_latencies() {
        // ld -> add -> add chain: 2 + 1 = 3 cycles from node 0 to end.
        let body = vec![
            orig(ld(IntReg::O0, IntReg::O1)),
            orig(add(IntReg::O1, IntReg::O2)),
            orig(add(IntReg::O2, IntReg::O3)),
        ];
        let g = DepGraph::build(&model(), &body, true);
        let cte = g.chain_to_end();
        assert_eq!(cte, vec![3, 1, 0]);
    }

    #[test]
    fn condition_codes_create_dependences() {
        let body = vec![
            orig(Instruction::cmp(IntReg::O0, Operand::imm(0))),
            orig(Instruction::Alu {
                op: AluOp::AddX,
                rs1: IntReg::O1,
                src2: Operand::imm(0),
                rd: IntReg::O2,
            }),
        ];
        let g = DepGraph::build(&model(), &body, true);
        assert!(g
            .edges
            .iter()
            .any(|e| matches!(e.kind, DepKind::Raw(Resource::Icc))));
    }

    #[test]
    fn pred_counts_match_edges() {
        let body = vec![
            orig(add(IntReg::O0, IntReg::O1)),
            orig(add(IntReg::O1, IntReg::O2)),
            orig(add(IntReg::O1, IntReg::O3)),
        ];
        let g = DepGraph::build(&model(), &body, true);
        assert_eq!(g.pred_counts()[0], 0);
        assert!(g.pred_counts()[1] >= 1);
        assert!(g.pred_counts()[2] >= 1);
        assert_eq!(g.len(), 3);
        assert!(!g.is_empty());
    }

    #[test]
    fn strongest_edge_wins_between_a_pair() {
        // Same pair has RAW (latency) and memory (order) reasons; the
        // recorded edge carries the larger distance.
        let body = vec![
            orig(ld(IntReg::O0, IntReg::O1)),
            orig(st(IntReg::O1, IntReg::O2)),
        ];
        let g = DepGraph::build(&model(), &body, true);
        let e: Vec<_> = g
            .edges
            .iter()
            .filter(|e| e.from == 0 && e.to == 1)
            .collect();
        assert_eq!(e.len(), 1, "one edge per pair");
        assert!(e[0].min_cycles >= 1);
    }
}
