//! Instruction scheduling for executable editing — the core
//! contribution of Schnarr & Larus (MICRO 1996), reproduced.
//!
//! Modern in-order superscalars leave many issue slots and stall
//! cycles unused. This crate adds a local (per-basic-block) list
//! scheduler to the EEL editing pipeline so that instrumentation
//! inserted by tools like QPT2 profiling is *scheduled together with*
//! the original instructions, hiding part of its cost in those unused
//! cycles.
//!
//! * [`DepGraph`] — register and memory dependences over a block body,
//!   with the paper's instrumentation-memory independence rule.
//! * [`Scheduler`] — the two-pass list scheduler driven by
//!   `pipeline_stalls` (see `eel-pipeline`), usable directly or as an
//!   [`eel_edit::EditSession::emit`] transform.
//! * [`SchedulePolicy`] — the pluggable ready-list rule: the paper's
//!   fewest-stalls-first default plus critical-path, load-delay-aware,
//!   and lookahead variants, selected via [`Priority`].
//! * [`exact`] — the branch-and-bound oracle behind
//!   [`Priority::Exact`]: proven minimum-latency schedules for blocks
//!   up to [`EXACT_MAX_BLOCK`] instructions, used to measure each list
//!   policy's optimality gap.
//!
//! # Scheduling an instrumented executable
//!
//! ```
//! use eel_core::Scheduler;
//! use eel_edit::EditSession;
//! use eel_pipeline::MachineModel;
//! use eel_sparc::{Assembler, Instruction, IntReg, Operand};
//!
//! // A toy program…
//! let mut a = Assembler::new();
//! a.mov(Operand::imm(1), IntReg::O0);
//! a.retl();
//! a.nop();
//! let exe = eel_edit::Executable::from_words(
//!     0x10000,
//!     a.finish().unwrap().iter().map(|i| i.encode()).collect(),
//! );
//!
//! // …instrumented and scheduled while being laid out (paper Fig. 3).
//! let mut session = EditSession::new(&exe)?;
//! for (r, b) in session.all_blocks() {
//!     session.insert_at_block_head(r, b, vec![Instruction::nop()]);
//! }
//! let sched = Scheduler::new(MachineModel::ultrasparc());
//! let edited = session.emit(sched.transform())?;
//! assert_eq!(edited.text_len(), exe.text_len() + 1);
//! # Ok::<(), eel_edit::EditError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dep;
pub mod exact;
mod policy;
mod sched;

pub use dep::{DepEdge, DepGraph, DepKind};
pub use exact::{exact_schedule, ExactOutcome, DEFAULT_EXACT_BUDGET, EXACT_MAX_BLOCK};
pub use policy::{Candidate, ChainFirst, LoadDelay, LookaheadK, SchedulePolicy, StallsFirst};
pub use sched::{Priority, SchedOptions, ScheduleExplain, Scheduler};
