//! Scheduler property tests: on random dependence DAGs and all four
//! shipped machine models, the two-pass list scheduler must
//! (a) emit a permutation of the input body,
//! (b) respect every `DepGraph` edge, and
//! (c) keep the block's total issue cycles (the `issue_trace` issue
//!     latency) from exceeding the unscheduled sequence — exactly in
//!     the overwhelming majority of blocks, and never by more than
//!     the bounded greedy anomaly (see
//!     `greedy_latency_anomalies_stay_rare_and_tiny`): greedy list
//!     scheduling is not optimal, and on ~1% of random blocks the
//!     fewest-stalls-first rule delays a critical instruction by a
//!     cycle or two. That is a property of the paper's §4 algorithm
//!     itself, so the test pins it instead of pretending it away.

use eel_core::{DepGraph, Priority, SchedOptions, Scheduler};
use eel_edit::{BlockCode, Tagged};
use eel_pipeline::{evaluate_block, MachineModel};
use eel_sparc::{Address, AluOp, FpOp, FpReg, Instruction, IntReg, MemWidth, Operand};
use proptest::prelude::*;

/// A compact generator spec for one instruction. The test expands it
/// with the instruction's body position mixed into immediates and FP
/// destinations, so every generated instruction in a body is
/// distinct — which makes "where did instruction `k` go" well-defined
/// when checking edge order on the scheduled permutation.
#[derive(Debug, Clone, Copy)]
struct Spec {
    kind: u8,
    r1: u8,
    r2: u8,
}

fn arb_spec() -> impl Strategy<Value = Spec> {
    (0u8..6, 0u8..8, 0u8..8).prop_map(|(kind, r1, r2)| Spec { kind, r1, r2 })
}

/// `%o0..%o5, %l0, %l1` — a small register pool so random bodies are
/// dense with RAW/WAR/WAW dependences.
fn reg(r: u8) -> IntReg {
    if r < 6 {
        IntReg::new(8 + r)
    } else {
        IntReg::new(16 + (r - 6))
    }
}

fn expand(i: usize, s: Spec) -> Instruction {
    let imm = Operand::imm(i as i32 + 1);
    match s.kind {
        0 => Instruction::Alu {
            op: AluOp::Add,
            rs1: reg(s.r1),
            src2: imm,
            rd: reg(s.r2),
        },
        1 => Instruction::Alu {
            op: AluOp::Sub,
            rs1: reg(s.r1),
            src2: imm,
            rd: reg((s.r1 + s.r2) % 8),
        },
        2 => Instruction::Load {
            width: MemWidth::Word,
            addr: Address::base_imm(reg(s.r1), 4 * i as i32),
            rd: reg(s.r2),
        },
        3 => Instruction::Store {
            width: MemWidth::Word,
            src: reg(s.r1),
            addr: Address::base_imm(IntReg::SP, 4 * i as i32),
        },
        4 => Instruction::Sethi {
            imm22: 0x1000 + i as u32,
            rd: reg(s.r2),
        },
        _ => Instruction::Fp {
            op: FpOp::FAddS,
            rs1: FpReg::new(s.r1),
            rs2: FpReg::new(s.r2),
            // Position-unique destination keeps FP specs distinct.
            rd: FpReg::new(16 + (i as u8 % 16)),
        },
    }
}

fn shipped_models() -> Vec<MachineModel> {
    vec![
        MachineModel::hypersparc(),
        MachineModel::supersparc(),
        MachineModel::ultrasparc(),
        MachineModel::microsparc(),
        MachineModel::vliw(),
        MachineModel::deepsparc(),
    ]
}

proptest! {
    #[test]
    fn schedule_respects_deps_and_never_slows_the_block(
        specs in prop::collection::vec(arb_spec(), 2..16),
    ) {
        // Distinct by construction (position-unique immediates /
        // offsets / destinations) — the permutation check relies on it.
        let insns: Vec<Instruction> = specs
            .iter()
            .enumerate()
            .map(|(i, &s)| expand(i, s))
            .collect();
        for a in 0..insns.len() {
            for b in a + 1..insns.len() {
                prop_assert_ne!(insns[a], insns[b]);
            }
        }
        for model in shipped_models() {
            let body: Vec<Tagged> = insns.iter().map(|&i| Tagged::original(i)).collect();
            let graph = DepGraph::build(&model, &body, true);
            for priority in Priority::ALL {
                let sched = Scheduler::with_options(
                    model.clone(),
                    SchedOptions {
                        priority,
                        ..SchedOptions::default()
                    },
                );
                let out = sched.schedule_block(BlockCode {
                    body: body.clone(),
                    tail: vec![],
                });

                // (a) A permutation of the input body, under every
                // policy.
                prop_assert_eq!(out.body.len(), body.len());
                let pos: Vec<usize> = insns
                    .iter()
                    .map(|insn| {
                        out.body
                            .iter()
                            .position(|t| &t.insn == insn)
                            .expect("scheduled body is a permutation of the input")
                    })
                    .collect();
                {
                    let mut sorted = pos.clone();
                    sorted.sort_unstable();
                    prop_assert_eq!(sorted, (0..body.len()).collect::<Vec<_>>());
                }

                // (b) Every dependence edge holds in the new order,
                // under every policy.
                for from in 0..graph.len() {
                    for e in graph.succ_edges(from) {
                        prop_assert!(
                            pos[e.from] < pos[e.to],
                            "edge {:?} violated on {} ({}): `{}` scheduled at {} after `{}` at {}",
                            e, model.name(), priority,
                            insns[e.from], pos[e.from], insns[e.to], pos[e.to]
                        );
                    }
                }

                // (c) Under the paper's default rule, total issue
                // cycles never exceed the unscheduled sequence beyond
                // the bounded greedy anomaly. The exact non-regression
                // rate is pinned by the aggregate test below. (The
                // alternative policies intentionally trade this bound
                // away — ChainFirst ignores stalls entirely.)
                if priority == Priority::StallsFirst {
                    let scheduled: Vec<Instruction> =
                        out.body.iter().map(|t| t.insn).collect();
                    let before = evaluate_block(&model, &insns).issue_latency();
                    let after = evaluate_block(&model, &scheduled).issue_latency();
                    prop_assert!(
                        after <= before + GREEDY_ANOMALY_MAX_EXCESS,
                        "schedule slowed the block on {} past the greedy bound: {} -> {} cycles\n{:?}",
                        model.name(), before, after, insns
                    );
                }
            }
        }
    }
}

/// The most cycles the greedy fewest-stalls-first rule has ever been
/// observed to cost on a random block (measured over 8 000
/// model×block samples). A scheduler bug that mis-orders or
/// mis-prices instructions blows far past this.
const GREEDY_ANOMALY_MAX_EXCESS: u64 = 2;

/// Aggregate latency pin: across a deterministic corpus of random
/// blocks, the scheduled issue latency must match or beat the
/// unscheduled sequence in ≥ 98% of model×block cases, and the rare
/// greedy anomalies must stay within [`GREEDY_ANOMALY_MAX_EXCESS`].
#[test]
fn greedy_latency_anomalies_stay_rare_and_tiny() {
    // A fixed xorshift corpus keeps the measured anomaly rate exact
    // and reproducible run to run.
    let mut x: u64 = 0x9E37_79B9_7F4A_7C15;
    let mut rnd = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    let models = shipped_models();
    let mut total = 0u64;
    let mut slowed = 0u64;
    for _ in 0..500 {
        let n = 2 + (rnd() % 14) as usize;
        let insns: Vec<Instruction> = (0..n)
            .map(|i| {
                expand(
                    i,
                    Spec {
                        kind: (rnd() % 6) as u8,
                        r1: (rnd() % 8) as u8,
                        r2: (rnd() % 8) as u8,
                    },
                )
            })
            .collect();
        for model in &models {
            let body: Vec<Tagged> = insns.iter().map(|&i| Tagged::original(i)).collect();
            let out =
                Scheduler::new(model.clone()).schedule_block(BlockCode { body, tail: vec![] });
            let scheduled: Vec<Instruction> = out.body.iter().map(|t| t.insn).collect();
            let before = evaluate_block(model, &insns).issue_latency();
            let after = evaluate_block(model, &scheduled).issue_latency();
            total += 1;
            if after > before {
                slowed += 1;
                assert!(
                    after - before <= GREEDY_ANOMALY_MAX_EXCESS,
                    "anomaly of {} cycles on {}: {:?}",
                    after - before,
                    model.name(),
                    insns
                );
            }
        }
    }
    assert!(
        slowed * 50 <= total,
        "greedy anomalies no longer rare: {slowed}/{total} blocks slowed"
    );
}
