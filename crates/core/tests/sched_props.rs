//! Scheduler property tests: on random dependence DAGs and all six
//! shipped machine models, the two-pass list scheduler must
//! (a) emit a permutation of the input body,
//! (b) respect every `DepGraph` edge, and
//! (c) stay within a *proven* distance of the optimum: the
//!     branch-and-bound oracle (`core::exact`, itself pinned against
//!     exhaustive enumeration in `exact_oracle.rs`) supplies the true
//!     minimum issue latency, and the paper's fewest-stalls-first rule
//!     must land within [`GREEDY_GAP_TO_OPTIMUM_MAX`] cycles of it.
//!     Greedy list scheduling is not optimal — on ~1% of random blocks
//!     it delays a critical instruction by a cycle or two; that is a
//!     property of the paper's §4 algorithm itself, so the tests bound
//!     it against ground truth instead of pretending it away. Every
//!     alternative policy is also checked to never beat the oracle
//!     (which would mean the oracle, not the policy, is broken).

use eel_core::{DepGraph, Priority, SchedOptions, Scheduler};
use eel_edit::{BlockCode, Tagged};
use eel_pipeline::{evaluate_block, MachineModel};
use eel_sparc::{Address, AluOp, FpOp, FpReg, Instruction, IntReg, MemWidth, Operand};
use proptest::prelude::*;

/// A compact generator spec for one instruction. The test expands it
/// with the instruction's body position mixed into immediates and FP
/// destinations, so every generated instruction in a body is
/// distinct — which makes "where did instruction `k` go" well-defined
/// when checking edge order on the scheduled permutation.
#[derive(Debug, Clone, Copy)]
struct Spec {
    kind: u8,
    r1: u8,
    r2: u8,
}

fn arb_spec() -> impl Strategy<Value = Spec> {
    (0u8..6, 0u8..8, 0u8..8).prop_map(|(kind, r1, r2)| Spec { kind, r1, r2 })
}

/// `%o0..%o5, %l0, %l1` — a small register pool so random bodies are
/// dense with RAW/WAR/WAW dependences.
fn reg(r: u8) -> IntReg {
    if r < 6 {
        IntReg::new(8 + r)
    } else {
        IntReg::new(16 + (r - 6))
    }
}

fn expand(i: usize, s: Spec) -> Instruction {
    let imm = Operand::imm(i as i32 + 1);
    match s.kind {
        0 => Instruction::Alu {
            op: AluOp::Add,
            rs1: reg(s.r1),
            src2: imm,
            rd: reg(s.r2),
        },
        1 => Instruction::Alu {
            op: AluOp::Sub,
            rs1: reg(s.r1),
            src2: imm,
            rd: reg((s.r1 + s.r2) % 8),
        },
        2 => Instruction::Load {
            width: MemWidth::Word,
            addr: Address::base_imm(reg(s.r1), 4 * i as i32),
            rd: reg(s.r2),
        },
        3 => Instruction::Store {
            width: MemWidth::Word,
            src: reg(s.r1),
            addr: Address::base_imm(IntReg::SP, 4 * i as i32),
        },
        4 => Instruction::Sethi {
            imm22: 0x1000 + i as u32,
            rd: reg(s.r2),
        },
        _ => Instruction::Fp {
            op: FpOp::FAddS,
            rs1: FpReg::new(s.r1),
            rs2: FpReg::new(s.r2),
            // Position-unique destination keeps FP specs distinct.
            rd: FpReg::new(16 + (i as u8 % 16)),
        },
    }
}

fn shipped_models() -> Vec<MachineModel> {
    vec![
        MachineModel::hypersparc(),
        MachineModel::supersparc(),
        MachineModel::ultrasparc(),
        MachineModel::microsparc(),
        MachineModel::vliw(),
        MachineModel::deepsparc(),
    ]
}

proptest! {
    #[test]
    fn schedule_respects_deps_and_never_slows_the_block(
        specs in prop::collection::vec(arb_spec(), 2..16),
    ) {
        // Distinct by construction (position-unique immediates /
        // offsets / destinations) — the permutation check relies on it.
        let insns: Vec<Instruction> = specs
            .iter()
            .enumerate()
            .map(|(i, &s)| expand(i, s))
            .collect();
        for a in 0..insns.len() {
            for b in a + 1..insns.len() {
                prop_assert_ne!(insns[a], insns[b]);
            }
        }
        for model in shipped_models() {
            let body: Vec<Tagged> = insns.iter().map(|&i| Tagged::original(i)).collect();
            let graph = DepGraph::build(&model, &body, true);
            // One oracle run per model×block serves every policy
            // below; `proven_optimal` gates the optimality assertions
            // (a budget-exhausted search only knows `latency ≤ list`,
            // not `latency ≤ every policy`). Blocks past 12
            // instructions are left to the permutation/edge checks —
            // at the trimmed property budget they mostly exhaust, and
            // they dominate the suite's runtime.
            let exact = (insns.len() <= 12).then(|| {
                Scheduler::with_options(
                    model.clone(),
                    SchedOptions {
                        exact_budget: PROPERTY_EXACT_BUDGET,
                        ..SchedOptions::default()
                    },
                )
                .exact_block(&BlockCode {
                    body: body.clone(),
                    tail: vec![],
                })
            });
            for priority in Priority::ALL {
                let sched = Scheduler::with_options(
                    model.clone(),
                    SchedOptions {
                        priority,
                        ..SchedOptions::default()
                    },
                );
                let out = sched.schedule_block(BlockCode {
                    body: body.clone(),
                    tail: vec![],
                });

                // (a) A permutation of the input body, under every
                // policy.
                prop_assert_eq!(out.body.len(), body.len());
                let pos: Vec<usize> = insns
                    .iter()
                    .map(|insn| {
                        out.body
                            .iter()
                            .position(|t| &t.insn == insn)
                            .expect("scheduled body is a permutation of the input")
                    })
                    .collect();
                {
                    let mut sorted = pos.clone();
                    sorted.sort_unstable();
                    prop_assert_eq!(sorted, (0..body.len()).collect::<Vec<_>>());
                }

                // (b) Every dependence edge holds in the new order,
                // under every policy.
                for from in 0..graph.len() {
                    for e in graph.succ_edges(from) {
                        prop_assert!(
                            pos[e.from] < pos[e.to],
                            "edge {:?} violated on {} ({}): `{}` scheduled at {} after `{}` at {}",
                            e, model.name(), priority,
                            insns[e.from], pos[e.from], insns[e.to], pos[e.to]
                        );
                    }
                }

                // (c) No policy may beat the proven optimum — and the
                // paper's default rule must land within the bounded
                // greedy anomaly of it. The aggregate gap rate is
                // pinned by `list_gap_to_the_optimum_stays_tiny`
                // below. (The alternative policies intentionally trade
                // the tight bound away — ChainFirst ignores stalls
                // entirely — but even they can never go below the
                // oracle.)
                let scheduled: Vec<Instruction> =
                    out.body.iter().map(|t| t.insn).collect();
                let after = evaluate_block(&model, &scheduled).issue_latency();
                if let Some(ex) = exact.as_ref().filter(|ex| ex.proven_optimal) {
                    prop_assert!(
                        ex.latency <= after,
                        "{} beat the proven optimum on {}: {} < {} cycles\n{:?}",
                        priority, model.name(), after, ex.latency, insns
                    );
                }
                if priority == Priority::StallsFirst {
                    if let Some(ex) = exact.as_ref().filter(|ex| ex.proven_optimal) {
                        prop_assert!(
                            after <= ex.latency + GREEDY_GAP_TO_OPTIMUM_MAX,
                            "greedy gap above the proven bound on {}: {} vs optimal {}\n{:?}",
                            model.name(), after, ex.latency, insns
                        );
                    }
                    // Budget-exhausted or not, scheduling must never
                    // slow the block past the greedy anomaly.
                    let before = evaluate_block(&model, &insns).issue_latency();
                    prop_assert!(
                        after <= before + GREEDY_ANOMALY_MAX_EXCESS,
                        "schedule slowed the block on {} past the greedy bound: {} -> {} cycles\n{:?}",
                        model.name(), before, after, insns
                    );
                }
            }
        }
    }
}

/// Node budget for the oracle runs inside the property tests: big
/// enough to prove >98% of random ≤15-insn blocks optimal, small
/// enough that the suite stays inside the tier-1 time budget. The
/// dedicated `exact_oracle` suite exercises the full default budget.
const PROPERTY_EXACT_BUDGET: u32 = 16_384;

/// The most cycles the greedy fewest-stalls-first rule has ever been
/// observed to *slow a block down* relative to the unscheduled
/// sequence — the original empirical pin, retained because it is the
/// user-visible regression bound ("scheduling never hurts much").
const GREEDY_ANOMALY_MAX_EXCESS: u64 = 2;

/// The most cycles the greedy rule may leave on the table versus the
/// branch-and-bound optimum. Measured at 4 over ~17 500 proven
/// model×block samples (gaps of 3–4 hit ~0.07% of blocks, all on the
/// deeper pipelines); the old ≤2 figure only ever held against the
/// *unscheduled* baseline, which is itself suboptimal. A scheduler bug
/// that mis-orders or mis-prices instructions blows far past this.
const GREEDY_GAP_TO_OPTIMUM_MAX: u64 = 4;

/// Aggregate optimality-gap pin: across a deterministic corpus of
/// random blocks on every shipped machine, the paper's default
/// schedule must stay within [`GREEDY_GAP_TO_OPTIMUM_MAX`] cycles of
/// the branch-and-bound optimum, suboptimal blocks must stay uncommon
/// (≤ 10% of model×block cases — vs the *optimum*, not the weaker
/// unscheduled baseline), and no alternative policy may dip below the
/// oracle.
#[test]
fn list_gap_to_the_optimum_stays_tiny() {
    // A fixed xorshift corpus keeps the measured gap rate exact and
    // reproducible run to run.
    let mut x: u64 = 0x9E37_79B9_7F4A_7C15;
    let mut rnd = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    let models = shipped_models();
    let mut total = 0u64;
    let mut suboptimal = 0u64;
    let mut unproven = 0u64;
    for _ in 0..300 {
        let n = 2 + (rnd() % 11) as usize;
        let insns: Vec<Instruction> = (0..n)
            .map(|i| {
                expand(
                    i,
                    Spec {
                        kind: (rnd() % 6) as u8,
                        r1: (rnd() % 8) as u8,
                        r2: (rnd() % 8) as u8,
                    },
                )
            })
            .collect();
        for model in &models {
            let body: Vec<Tagged> = insns.iter().map(|&i| Tagged::original(i)).collect();
            let code = BlockCode { body, tail: vec![] };
            let exact = Scheduler::with_options(
                model.clone(),
                SchedOptions {
                    exact_budget: PROPERTY_EXACT_BUDGET,
                    ..SchedOptions::default()
                },
            )
            .exact_block(&code);
            total += 1;
            if !exact.proven_optimal {
                unproven += 1;
                continue;
            }
            let gap = exact.gap();
            if gap > 0 {
                suboptimal += 1;
                assert!(
                    gap <= GREEDY_GAP_TO_OPTIMUM_MAX,
                    "greedy gap of {} cycles on {}: {:?}",
                    gap,
                    model.name(),
                    insns
                );
            }
            // Every policy's schedule sits at or above the optimum —
            // a policy "beating" the oracle means the oracle is wrong.
            for priority in Priority::ALL {
                let sched = Scheduler::with_options(
                    model.clone(),
                    SchedOptions {
                        priority,
                        ..SchedOptions::default()
                    },
                );
                let out = sched.schedule_block(code.clone());
                let scheduled: Vec<Instruction> = out.body.iter().map(|t| t.insn).collect();
                let after = evaluate_block(model, &scheduled).issue_latency();
                assert!(
                    exact.latency <= after,
                    "{} beat the proven optimum on {}: {} < {}\n{:?}",
                    priority,
                    model.name(),
                    after,
                    exact.latency,
                    insns
                );
            }
        }
    }
    // The oracle must actually prove the corpus: random ≤12-insn
    // blocks are well inside its comfort zone even at the trimmed
    // property budget.
    assert!(
        unproven * 20 <= total,
        "oracle budget exhausted too often: {unproven}/{total}"
    );
    assert!(
        suboptimal * 10 <= total,
        "greedy anomalies no longer rare: {suboptimal}/{total} blocks suboptimal"
    );
}
