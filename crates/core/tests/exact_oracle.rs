//! Correctness pins for the branch-and-bound oracle (`core::exact`).
//!
//! The oracle is the ground truth every scheduling change is
//! differentially tested against, so it gets its own ground truth
//! here: a pruning-free exhaustive enumeration of every
//! dependence-legal order. On blocks small enough to enumerate
//! (≤ 8 instructions), the oracle must agree exactly, on every
//! shipped machine. Larger blocks keep the weaker — but universal —
//! guarantees: never worse than the list incumbent, and an honest
//! `budget_exhausted` flag instead of a hang when the search is cut.
//!
//! The proptest differential honors `PROPTEST_CASES`; nightly CI
//! deepens it to 96 cases.

use eel_core::{DepGraph, Priority, SchedOptions, Scheduler};
use eel_edit::{BlockCode, Tagged};
use eel_pipeline::{evaluate_block, MachineModel, PipelineState, PreparedInsn};
use eel_sparc::{Address, AluOp, FpOp, FpReg, Instruction, IntReg, MemWidth, Operand};
use proptest::prelude::*;

/// A compact generator spec for one instruction — same shape as the
/// `sched_props` generator, so the oracle sees the block population
/// the list-scheduler properties are pinned on.
#[derive(Debug, Clone, Copy)]
struct Spec {
    kind: u8,
    r1: u8,
    r2: u8,
}

fn arb_spec() -> impl Strategy<Value = Spec> {
    (0u8..6, 0u8..8, 0u8..8).prop_map(|(kind, r1, r2)| Spec { kind, r1, r2 })
}

/// `%o0..%o5, %l0, %l1` — a small pool keeps random bodies dense with
/// RAW/WAR/WAW dependences.
fn reg(r: u8) -> IntReg {
    if r < 6 {
        IntReg::new(8 + r)
    } else {
        IntReg::new(16 + (r - 6))
    }
}

fn expand(i: usize, s: Spec) -> Instruction {
    let imm = Operand::imm(i as i32 + 1);
    match s.kind {
        0 => Instruction::Alu {
            op: AluOp::Add,
            rs1: reg(s.r1),
            src2: imm,
            rd: reg(s.r2),
        },
        1 => Instruction::Alu {
            op: AluOp::Sub,
            rs1: reg(s.r1),
            src2: imm,
            rd: reg((s.r1 + s.r2) % 8),
        },
        2 => Instruction::Load {
            width: MemWidth::Word,
            addr: Address::base_imm(reg(s.r1), 4 * i as i32),
            rd: reg(s.r2),
        },
        3 => Instruction::Store {
            width: MemWidth::Word,
            src: reg(s.r1),
            addr: Address::base_imm(IntReg::SP, 4 * i as i32),
        },
        4 => Instruction::Sethi {
            imm22: 0x1000 + i as u32,
            rd: reg(s.r2),
        },
        _ => Instruction::Fp {
            op: FpOp::FAddS,
            rs1: FpReg::new(s.r1),
            rs2: FpReg::new(s.r2),
            rd: FpReg::new(16 + (i as u8 % 16)),
        },
    }
}

fn shipped_models() -> Vec<MachineModel> {
    vec![
        MachineModel::hypersparc(),
        MachineModel::supersparc(),
        MachineModel::ultrasparc(),
        MachineModel::microsparc(),
        MachineModel::vliw(),
        MachineModel::deepsparc(),
    ]
}

fn body_of(insns: &[Instruction]) -> Vec<Tagged> {
    insns.iter().map(|&i| Tagged::original(i)).collect()
}

/// A deterministic xorshift stream for fixed corpora.
fn xorshift(seed: u64) -> impl FnMut() -> u64 {
    let mut x = seed;
    move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    }
}

/// Pruning-free exhaustive enumeration: the minimum issue latency over
/// every dependence-legal order of `body`, sharing scoreboard state
/// across common prefixes. Returns `None` if more than `cap` prefixes
/// would be visited (so a pathological block skips instead of stalling
/// the suite).
fn brute_force_min(model: &MachineModel, body: &[Tagged], cap: u64) -> Option<u64> {
    struct Brute<'a> {
        model: &'a MachineModel,
        body: &'a [Tagged],
        prepared: Vec<PreparedInsn>,
        graph: &'a DepGraph,
        nodes: u64,
        cap: u64,
        best: u64,
    }
    impl Brute<'_> {
        fn go(
            &mut self,
            pipe: &PipelineState,
            used: &mut [bool],
            preds: &mut [u32],
            left: usize,
        ) -> bool {
            if left == 0 {
                self.best = self.best.min(pipe.cycle() + 1);
                return true;
            }
            for i in 0..self.body.len() {
                if used[i] || preds[i] != 0 {
                    continue;
                }
                self.nodes += 1;
                if self.nodes > self.cap {
                    return false;
                }
                let mut child = pipe.clone();
                child.issue_prepared(self.model, &self.body[i].insn, &self.prepared[i]);
                used[i] = true;
                for e in self.graph.succ_edges(i) {
                    preds[e.to] -= 1;
                }
                let ok = self.go(&child, used, preds, left - 1);
                for e in self.graph.succ_edges(i) {
                    preds[e.to] += 1;
                }
                used[i] = false;
                if !ok {
                    return false;
                }
            }
            true
        }
    }
    let n = body.len();
    let graph = DepGraph::build(model, body, true);
    let mut b = Brute {
        model,
        body,
        prepared: body.iter().map(|t| model.prepare(&t.insn)).collect(),
        graph: &graph,
        nodes: 0,
        cap,
        best: u64::MAX,
    };
    let mut used = vec![false; n];
    let mut preds = graph.pred_counts().to_vec();
    b.go(&PipelineState::new(model), &mut used, &mut preds, n)
        .then_some(b.best)
}

/// The oracle agrees exactly with exhaustive enumeration on a fixed
/// corpus of small blocks, on every shipped machine — the pin of the
/// oracle's own correctness (bounds admissible, dominance sound).
#[test]
fn oracle_matches_exhaustive_enumeration_on_small_blocks() {
    let mut rnd = xorshift(0xA076_1D64_78BD_642F);
    let models = shipped_models();
    let mut checked = 0u64;
    let mut skipped = 0u64;
    for _ in 0..48 {
        let n = 2 + (rnd() % 7) as usize; // 2..=8 instructions
        let insns: Vec<Instruction> = (0..n)
            .map(|i| {
                expand(
                    i,
                    Spec {
                        kind: (rnd() % 6) as u8,
                        r1: (rnd() % 8) as u8,
                        r2: (rnd() % 8) as u8,
                    },
                )
            })
            .collect();
        let body = body_of(&insns);
        for model in &models {
            let Some(brute) = brute_force_min(model, &body, 200_000) else {
                skipped += 1;
                continue;
            };
            let code = BlockCode {
                body: body.clone(),
                tail: vec![],
            };
            let out = Scheduler::new(model.clone()).exact_block(&code);
            assert!(
                out.proven_optimal && !out.budget_exhausted,
                "budget exhausted on an enumerable block ({}): {:?}",
                model.name(),
                insns
            );
            assert_eq!(
                out.latency,
                brute,
                "oracle missed the optimum on {}: {} != {} for {:?}",
                model.name(),
                out.latency,
                brute,
                insns
            );
            let scheduled: Vec<Instruction> = out.body.iter().map(|t| t.insn).collect();
            assert_eq!(
                evaluate_block(model, &scheduled).issue_latency(),
                out.latency,
                "oracle mistimed its own schedule on {}",
                model.name()
            );
            assert!(out.latency <= out.list_latency);
            checked += 1;
        }
    }
    assert!(
        checked > 10 * skipped,
        "enumeration skipped too often: {checked} checked vs {skipped} skipped"
    );
}

proptest! {
    /// Random-block differential, deepened by `PROPTEST_CASES` in
    /// nightly CI: oracle == exhaustive optimum on every machine.
    #[test]
    fn oracle_is_optimal_on_random_small_blocks(
        specs in prop::collection::vec(arb_spec(), 2..7),
    ) {
        let insns: Vec<Instruction> = specs
            .iter()
            .enumerate()
            .map(|(i, &s)| expand(i, s))
            .collect();
        let body = body_of(&insns);
        for model in shipped_models() {
            let Some(brute) = brute_force_min(&model, &body, 100_000) else {
                continue;
            };
            let code = BlockCode { body: body.clone(), tail: vec![] };
            let out = Scheduler::new(model.clone()).exact_block(&code);
            prop_assert!(out.proven_optimal);
            prop_assert_eq!(
                out.latency, brute,
                "oracle missed the optimum on {}: {:?}", model.name(), insns
            );
        }
    }
}

/// Blocks that blow the node budget must come back as the incumbent
/// list schedule — bit-identical — with the `exact_budget_exhausted`
/// counter raised, and the telemetry must account for every exact
/// block as either proven optimal or cut short.
#[test]
fn budget_exhaustion_falls_back_to_the_list_schedule() {
    let model = MachineModel::ultrasparc();
    // A one-node budget can never complete a schedule (a leaf needs n
    // issues), so any block whose root bound fails to close the search
    // must fall back to the incumbent.
    let starved = Scheduler::with_options(
        model.clone(),
        SchedOptions {
            priority: Priority::Exact,
            exact_budget: 1,
            ..SchedOptions::default()
        },
    );
    let list = Scheduler::new(model.clone());
    let reg = eel_telemetry::Registry::new();
    let mut rnd = xorshift(0x9E37_79B9_7F4A_7C15);
    for _ in 0..100 {
        let n = 4 + (rnd() % 9) as usize;
        let insns: Vec<Instruction> = (0..n)
            .map(|i| {
                expand(
                    i,
                    Spec {
                        kind: (rnd() % 6) as u8,
                        r1: (rnd() % 8) as u8,
                        r2: (rnd() % 8) as u8,
                    },
                )
            })
            .collect();
        let code = BlockCode {
            body: body_of(&insns),
            tail: vec![],
        };
        let exact_out = starved.schedule_block_with(code.clone(), &reg);
        let list_out = list.schedule_block(code);
        assert_eq!(
            exact_out, list_out,
            "a starved oracle must keep the list incumbent: {insns:?}"
        );
    }
    let snap = reg.snapshot();
    let exhausted = snap.counters["sched.exact_budget_exhausted"];
    assert!(
        exhausted > 0,
        "no block in the corpus even started the search"
    );
    // The incumbent stood everywhere, so no cycles were won…
    assert_eq!(snap.counters["sched.gap_cycles"], 0);
    // …and every exact block resolved to exactly one of the two fates.
    assert_eq!(
        snap.counters["sched.optimal_blocks"] + exhausted,
        snap.counters["sched.exact_blocks"]
    );
}

/// At any size — including past `EXACT_MAX_BLOCK`, where the search
/// refuses to start — the oracle never returns a schedule slower than
/// the list incumbent.
#[test]
fn oracle_never_worse_than_the_list_at_any_size() {
    let mut rnd = xorshift(0xD1B5_4A32_D192_ED03);
    let models = shipped_models();
    for round in 0..24 {
        let n = 10 + (rnd() % 31) as usize; // 10..=40: spans the cap
        let insns: Vec<Instruction> = (0..n)
            .map(|i| {
                expand(
                    i,
                    Spec {
                        kind: (rnd() % 6) as u8,
                        r1: (rnd() % 8) as u8,
                        r2: (rnd() % 8) as u8,
                    },
                )
            })
            .collect();
        let model = &models[round % models.len()];
        let code = BlockCode {
            body: body_of(&insns),
            tail: vec![],
        };
        let out = Scheduler::new(model.clone()).exact_block(&code);
        assert!(
            out.latency <= out.list_latency,
            "oracle returned a slower schedule on {}: {} > {}",
            model.name(),
            out.latency,
            out.list_latency
        );
        let scheduled: Vec<Instruction> = out.body.iter().map(|t| t.insn).collect();
        assert_eq!(
            evaluate_block(model, &scheduled).issue_latency(),
            out.latency
        );
        if n > eel_core::EXACT_MAX_BLOCK {
            assert!(out.budget_exhausted, "oversized block must report a cut");
            assert_eq!(out.gap(), 0, "oversized block keeps the incumbent");
        }
    }
}
