//! The top-level simulator: functional execution optionally coupled to
//! the pipeline timing model and an instruction cache.
//!
//! [`run`] is a dispatcher over two engines with identical observable
//! behavior. Timed runs without a data-cache model or stall
//! attribution take the block-memoized replay path (`crate::block`),
//! which caches the decode/`prepare`/timing walk per basic block and
//! entry pipeline context; everything else — and everything, when
//! `EEL_NO_BLOCK_CACHE=1` — takes the interpretive per-instruction
//! path ([`crate::ReferenceCpu`]). The differential property test
//! `tests/block_vs_reference.rs` pins the two engines to exact
//! agreement on every counter, cycle, and fault.

use eel_edit::Executable;
use eel_pipeline::{MachineModel, StallProfile};
use eel_telemetry::Sink;

use crate::error::SimError;
use crate::icache::{DCacheConfig, ICacheConfig};
use crate::memory::Memory;
use crate::predictor::BranchPredictorConfig;

/// How to time a run.
#[derive(Debug, Clone, Default)]
pub struct TimingConfig {
    /// Extra cycles charged for each *taken* control transfer (fetch
    /// redirect). The scheduler's model omits this, like the paper's;
    /// the measured machine may include it.
    pub taken_branch_penalty: u32,
    /// Optional instruction-cache model.
    pub icache: Option<ICacheConfig>,
    /// Optional data-cache model: load misses extend the load's result
    /// latency (a memory-system effect the SADL descriptions omit).
    pub dcache: Option<DCacheConfig>,
    /// Optional two-bit branch predictor: conditional-branch
    /// mispredicts charge their penalty (instead of, or on top of,
    /// `taken_branch_penalty`).
    pub predictor: Option<BranchPredictorConfig>,
}

/// Limits and options for a run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Fault with [`SimError::InstructionLimit`] past this many
    /// instructions (runaway guard).
    pub max_instructions: u64,
    /// Timing configuration; `None` runs functionally only.
    pub timing: Option<TimingConfig>,
    /// Classify every pipeline stall cycle by cause (structural unit,
    /// or RAW/WAR/WAW hazard and the register plus producer behind
    /// it) and return the aggregate in [`RunResult::stall_profile`].
    /// Requires `timing`; costs an extra hazard query per retired
    /// instruction, so it defaults to off and the hot path is
    /// untouched.
    pub attribute_stalls: bool,
}

impl Default for RunConfig {
    fn default() -> RunConfig {
        RunConfig {
            max_instructions: 500_000_000,
            timing: None,
            attribute_stalls: false,
        }
    }
}

/// The outcome of a completed run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Dynamic instruction count.
    pub instructions: u64,
    /// Total simulated cycles (0 for functional-only runs).
    pub cycles: u64,
    /// The program's exit code (`%o0` at `ta 0`).
    pub exit_code: u32,
    /// Per-text-word execution counts, indexed like the text segment.
    pub pc_counts: Vec<u64>,
    /// Instruction-cache misses (0 when no cache was modeled).
    pub icache_misses: u64,
    /// Data-cache misses (0 when no cache was modeled).
    pub dcache_misses: u64,
    /// Conditional-branch mispredictions (0 without a predictor).
    pub mispredicts: u64,
    /// Number of taken control transfers.
    pub taken_branches: u64,
    /// Number of executed loads and stores.
    pub mem_ops: u64,
    /// Per-text-word *taken* counts: `taken_counts[i]` is how often the
    /// CTI at word `i` transferred control (0 for non-CTI words and
    /// untaken executions). Ground truth for edge profiles.
    pub taken_counts: Vec<u64>,
    /// The final data memory, for reading back counter tables.
    pub memory: Memory,
    /// Aggregate stall attribution over the whole run, present only
    /// when [`RunConfig::attribute_stalls`] was set on a timed run.
    /// Producer labels are text word indices, so RAW stalls can be
    /// traced back to the static instruction that caused them.
    pub stall_profile: Option<StallProfile>,
}

impl RunResult {
    /// Cycles per instruction.
    pub fn cpi(&self) -> f64 {
        if self.instructions == 0 {
            return 0.0;
        }
        self.cycles as f64 / self.instructions as f64
    }

    /// Simulated seconds at `clock_mhz`.
    pub fn seconds(&self, clock_mhz: u32) -> f64 {
        self.cycles as f64 / (f64::from(clock_mhz) * 1e6)
    }
}

/// Runs an executable to completion.
///
/// With `model == None` (or `config.timing == None`) the run is purely
/// functional; otherwise each retired instruction is issued through
/// the machine's pipeline state to accumulate cycles, with optional
/// taken-branch and I-cache penalties on top.
///
/// # Errors
///
/// Propagates any [`SimError`] fault, including the instruction-limit
/// guard.
///
/// ```
/// use eel_sim::{run, RunConfig};
/// use eel_sparc::{Assembler, IntReg, Operand};
///
/// let mut a = Assembler::new();
/// a.mov(Operand::imm(9), IntReg::O0);
/// a.ta(0);
/// let exe = eel_edit::Executable::from_words(
///     0x10000,
///     a.finish().unwrap().iter().map(|i| i.encode()).collect(),
/// );
/// let result = run(&exe, None, &RunConfig::default())?;
/// assert_eq!(result.exit_code, 9);
/// assert_eq!(result.instructions, 2);
/// # Ok::<(), eel_sim::SimError>(())
/// ```
pub fn run(
    exe: &Executable,
    model: Option<&MachineModel>,
    config: &RunConfig,
) -> Result<RunResult, SimError> {
    run_with(exe, model, config, &())
}

/// [`run`] observed through a telemetry sink.
///
/// With a live sink every *completed* run flushes one batch of
/// counters (`sim.runs`, `sim.instructions`, `sim.cycles`,
/// `sim.mem_ops`, `sim.taken_branches`, the `sim.decode_rebuilds` /
/// `sim.prepare_rebuilds` cache-rebuild counts, and — on the block
/// path — `sim.block_builds` / `sim.block_ctx_hits` /
/// `sim.block_ctx_misses`) plus `sim.run_ns` / `sim.run_cycles`
/// histogram samples. Totals are accumulated in locals and flushed
/// once at exit, so the retire loop performs no atomic operations;
/// with the disabled sink `()` the accumulation itself is statically
/// dead and this is exactly [`run`].
pub fn run_with<S: Sink>(
    exe: &Executable,
    model: Option<&MachineModel>,
    config: &RunConfig,
    sink: &S,
) -> Result<RunResult, SimError> {
    if let (Some(model), Some(timing)) = (model, config.timing.as_ref()) {
        // Block replay batches I-cache charges at block entry and
        // cannot interleave per-instruction data-cache latency or
        // stall attribution, so those configurations (and functional
        // runs, which have no timing walk to memoize) stay on the
        // reference path.
        if timing.dcache.is_none() && !config.attribute_stalls && !block_replay_disabled() {
            return crate::block::run_blocks(exe, model, timing, config, sink);
        }
    }
    crate::reference::run_interpretive(exe, model, config, sink)
}

/// `EEL_NO_BLOCK_CACHE=1` forces every run onto the interpretive
/// reference path (the analogue of the engine's `EEL_NO_CACHE`).
/// Checked per run so tests can toggle it.
fn block_replay_disabled() -> bool {
    std::env::var_os("EEL_NO_BLOCK_CACHE").is_some_and(|v| v == "1")
}

#[cfg(test)]
mod tests {
    use super::*;
    use eel_sparc::{Assembler, Cond, Instruction, IntReg, Operand};

    fn loop_program(n: i32) -> Executable {
        let mut a = Assembler::new();
        let top = a.new_label();
        a.mov(Operand::imm(n), IntReg::O1);
        a.mov(Operand::imm(0), IntReg::O0);
        a.bind(top);
        a.add(IntReg::O0, Operand::imm(1), IntReg::O0);
        a.subcc(IntReg::O1, Operand::imm(1), IntReg::O1);
        a.b(Cond::Ne, top);
        a.nop();
        a.ta(0);
        Executable::from_words(
            0x10000,
            a.finish().unwrap().iter().map(|i| i.encode()).collect(),
        )
    }

    #[test]
    fn functional_run_counts_instructions() {
        let exe = loop_program(10);
        let r = run(&exe, None, &RunConfig::default()).unwrap();
        assert_eq!(r.exit_code, 10);
        assert_eq!(r.instructions, 2 + 10 * 4 + 1);
        assert_eq!(r.cycles, 0, "functional runs have no cycles");
    }

    #[test]
    fn pc_counts_track_block_executions() {
        let exe = loop_program(5);
        let r = run(&exe, None, &RunConfig::default()).unwrap();
        // Loop body words (indices 2..6) execute 5 times each.
        for w in 2..6 {
            assert_eq!(r.pc_counts[w], 5, "word {w}");
        }
        assert_eq!(r.pc_counts[0], 1);
        assert_eq!(r.pc_counts[6], 1, "exit trap once");
    }

    #[test]
    fn timed_run_accumulates_cycles() {
        let exe = loop_program(100);
        let model = MachineModel::ultrasparc();
        let r = run(
            &exe,
            Some(&model),
            &RunConfig {
                timing: Some(TimingConfig::default()),
                ..RunConfig::default()
            },
        )
        .unwrap();
        assert!(r.cycles > 0);
        assert!(
            r.cycles < r.instructions * 4,
            "4-way machine should not average 4 cycles per instruction here"
        );
        assert!(r.cpi() > 0.25, "cannot beat the issue width");
    }

    #[test]
    fn wider_machine_is_not_slower() {
        let exe = loop_program(200);
        let cfg = RunConfig {
            timing: Some(TimingConfig::default()),
            ..RunConfig::default()
        };
        let hyper = run(&exe, Some(&MachineModel::hypersparc()), &cfg).unwrap();
        let ultra = run(&exe, Some(&MachineModel::ultrasparc()), &cfg).unwrap();
        assert!(ultra.cycles <= hyper.cycles);
    }

    #[test]
    fn branch_penalty_adds_cycles() {
        let exe = loop_program(100);
        let model = MachineModel::ultrasparc();
        let base = run(
            &exe,
            Some(&model),
            &RunConfig {
                timing: Some(TimingConfig::default()),
                ..RunConfig::default()
            },
        )
        .unwrap();
        let penalized = run(
            &exe,
            Some(&model),
            &RunConfig {
                timing: Some(TimingConfig {
                    taken_branch_penalty: 3,
                    ..TimingConfig::default()
                }),
                ..RunConfig::default()
            },
        )
        .unwrap();
        assert_eq!(penalized.taken_branches, 99, "99 taken back edges");
        assert!(penalized.cycles >= base.cycles + 3 * 99);
    }

    #[test]
    fn icache_misses_counted() {
        let exe = loop_program(50);
        let model = MachineModel::ultrasparc();
        let r = run(
            &exe,
            Some(&model),
            &RunConfig {
                timing: Some(TimingConfig {
                    icache: Some(ICacheConfig::default()),
                    ..TimingConfig::default()
                }),
                ..RunConfig::default()
            },
        )
        .unwrap();
        assert!(r.icache_misses >= 1, "at least the cold miss");
        assert!(r.icache_misses <= 2, "tiny loop fits in the cache");
    }

    #[test]
    fn instruction_limit_guards_runaways() {
        // An infinite loop.
        let mut a = Assembler::new();
        let top = a.new_label();
        a.bind(top);
        a.ba(top);
        a.nop();
        let exe = Executable::from_words(
            0x10000,
            a.finish().unwrap().iter().map(|i| i.encode()).collect(),
        );
        let err = run(
            &exe,
            None,
            &RunConfig {
                max_instructions: 1000,
                ..RunConfig::default()
            },
        )
        .unwrap_err();
        assert!(matches!(
            err,
            SimError::InstructionLimit {
                limit: 1000,
                retired: 1000
            }
        ));
    }

    #[test]
    fn attribution_profiles_a_timed_run() {
        // The dcache test's load-use pattern, shrunk: every iteration
        // stalls on the load's result, so a RAW profile must appear.
        let mut a = Assembler::new();
        let top = a.new_label();
        a.set(Executable::DEFAULT_DATA_BASE, IntReg::O0);
        a.set(64, IntReg::O1);
        a.bind(top);
        a.ld(eel_sparc::Address::base_imm(IntReg::O0, 0), IntReg::O3);
        a.add(IntReg::O3, Operand::imm(1), IntReg::O4); // load-use RAW
        a.subcc(IntReg::O1, Operand::imm(1), IntReg::O1);
        a.b(Cond::Ne, top);
        a.nop();
        a.ta(0);
        let insns = a.finish().unwrap();
        let load_word = insns
            .iter()
            .position(|i| matches!(i, Instruction::Load { .. }))
            .unwrap() as u32;
        let mut exe = Executable::from_words(0x10000, insns.iter().map(|i| i.encode()).collect());
        exe.reserve_bss(64);
        let model = MachineModel::ultrasparc();
        let cfg = RunConfig {
            timing: Some(TimingConfig::default()),
            attribute_stalls: true,
            ..RunConfig::default()
        };
        let r = run(&exe, Some(&model), &cfg).unwrap();
        let profile = r.stall_profile.expect("attribution was requested");
        assert!(profile.raw_total() > 0, "load-use loop must stall on RAW");
        // RAW stalls name the load's text word as their producer.
        assert!(
            profile
                .producers
                .keys()
                .any(|&(_, label)| label == load_word),
            "{:?}",
            profile.producers
        );

        // Identical run without attribution: same timing, no profile.
        let plain = run(
            &exe,
            Some(&model),
            &RunConfig {
                timing: Some(TimingConfig::default()),
                ..RunConfig::default()
            },
        )
        .unwrap();
        assert!(plain.stall_profile.is_none());
        assert_eq!(plain.cycles, r.cycles, "attribution must not change timing");
    }

    #[test]
    fn dcache_misses_slow_loads() {
        // A loop striding a 64 KiB array through a 1 KiB cache misses
        // every other line and runs measurably slower than with no
        // cache model.
        let mut a = Assembler::new();
        let top = a.new_label();
        a.set(Executable::DEFAULT_DATA_BASE, IntReg::O0);
        a.set(0x10000, IntReg::O1); // byte counter
        a.bind(top);
        a.ld(
            eel_sparc::Address::base_reg(IntReg::O0, IntReg::O2),
            IntReg::O3,
        );
        a.add(IntReg::O3, Operand::imm(1), IntReg::O4); // load-use
        a.add(IntReg::O2, Operand::imm(32), IntReg::O2);
        a.subcc(IntReg::O1, Operand::imm(32), IntReg::O1);
        a.b(Cond::Ne, top);
        a.nop();
        a.ta(0);
        let words: Vec<u32> = a.finish().unwrap().iter().map(|i| i.encode()).collect();
        let mut exe = Executable::from_words(0x10000, words);
        exe.reserve_bss(0x10000 + 64);
        let model = MachineModel::ultrasparc();
        let base = run(
            &exe,
            Some(&model),
            &RunConfig {
                timing: Some(TimingConfig::default()),
                ..RunConfig::default()
            },
        )
        .unwrap();
        let with_dcache = run(
            &exe,
            Some(&model),
            &RunConfig {
                timing: Some(TimingConfig {
                    dcache: Some(DCacheConfig {
                        size: 1024,
                        line: 32,
                        miss_penalty: 10,
                    }),
                    ..TimingConfig::default()
                }),
                ..RunConfig::default()
            },
        )
        .unwrap();
        assert_eq!(base.dcache_misses, 0);
        assert!(
            with_dcache.dcache_misses >= 2048,
            "{}",
            with_dcache.dcache_misses
        );
        assert!(
            with_dcache.cycles > base.cycles + 5 * with_dcache.dcache_misses,
            "misses must cost load-use time: {} vs {}",
            with_dcache.cycles,
            base.cycles
        );
    }

    #[test]
    fn hot_working_set_hits() {
        let exe = loop_program(200);
        let model = MachineModel::ultrasparc();
        let r = run(
            &exe,
            Some(&model),
            &RunConfig {
                timing: Some(TimingConfig {
                    dcache: Some(DCacheConfig::default()),
                    ..TimingConfig::default()
                }),
                ..RunConfig::default()
            },
        )
        .unwrap();
        assert_eq!(r.dcache_misses, 0, "the loop touches no memory");
    }

    #[test]
    fn predictor_charges_mispredicts() {
        let exe = loop_program(100);
        let model = MachineModel::ultrasparc();
        let base = run(
            &exe,
            Some(&model),
            &RunConfig {
                timing: Some(TimingConfig::default()),
                ..RunConfig::default()
            },
        )
        .unwrap();
        let predicted = run(
            &exe,
            Some(&model),
            &RunConfig {
                timing: Some(TimingConfig {
                    predictor: Some(BranchPredictorConfig::default()),
                    ..TimingConfig::default()
                }),
                ..RunConfig::default()
            },
        )
        .unwrap();
        // The back edge trains quickly: only warmup + the final exit
        // mispredict.
        assert!(predicted.mispredicts <= 3, "{}", predicted.mispredicts);
        assert!(predicted.cycles >= base.cycles);
        assert!(
            predicted.cycles <= base.cycles + 4 * (predicted.mispredicts + 1),
            "penalty bounded by mispredicts"
        );
    }

    #[test]
    fn taken_counts_track_branch_outcomes() {
        let exe = loop_program(5);
        let r = run(&exe, None, &RunConfig::default()).unwrap();
        // The back edge at word 4 is taken 4 times (untaken once).
        assert_eq!(r.taken_counts[4], 4);
        assert_eq!(r.pc_counts[4], 5);
        assert!(r
            .taken_counts
            .iter()
            .enumerate()
            .all(|(i, &c)| i == 4 || c == 0));
    }

    #[test]
    fn telemetry_sink_observes_a_run_without_changing_it() {
        let exe = loop_program(10);
        let model = MachineModel::ultrasparc();
        let cfg = RunConfig {
            timing: Some(TimingConfig::default()),
            ..RunConfig::default()
        };
        let reg = eel_telemetry::Registry::new();
        let observed = run_with(&exe, Some(&model), &cfg, &reg).unwrap();
        let plain = run(&exe, Some(&model), &cfg).unwrap();
        assert_eq!(observed.instructions, plain.instructions);
        assert_eq!(observed.cycles, plain.cycles);
        let snap = reg.snapshot();
        assert_eq!(snap.counters["sim.runs"], 1);
        assert_eq!(snap.counters["sim.instructions"], plain.instructions);
        assert_eq!(snap.counters["sim.cycles"], plain.cycles);
        assert_eq!(snap.counters["sim.taken_branches"], plain.taken_branches);
        // The timed run takes the block path: the loop's two blocks
        // (entry + back-edge target) and the exit trap build once each,
        // and the steady-state iterations replay memoized timing.
        assert_eq!(snap.counters["sim.block_builds"], 3);
        assert!(snap.counters["sim.block_ctx_hits"] > 0);
        assert!(snap.counters["sim.block_ctx_misses"] >= 3);
        assert_eq!(snap.histograms["sim.run_ns"].count, 1);
        assert_eq!(snap.histograms["sim.run_cycles"].max, plain.cycles);
    }

    #[test]
    fn telemetry_pins_reference_path_rebuild_counts() {
        let exe = loop_program(10);
        let model = MachineModel::ultrasparc();
        let cfg = RunConfig {
            timing: Some(TimingConfig::default()),
            ..RunConfig::default()
        };
        let reg = eel_telemetry::Registry::new();
        let observed = crate::ReferenceCpu::run_with(&exe, Some(&model), &cfg, &reg).unwrap();
        let snap = reg.snapshot();
        assert_eq!(snap.counters["sim.instructions"], observed.instructions);
        // Every static text word decodes exactly once (no self-modifying
        // code here), and only timed words get prepared.
        assert_eq!(snap.counters["sim.decode_rebuilds"], 7);
        assert_eq!(snap.counters["sim.prepare_rebuilds"], 7);
    }

    /// Every observable a run produces, for cross-engine equality
    /// checks (the memory image is compared via the counter words the
    /// programs under test write).
    fn observables(r: &RunResult) -> (u64, u64, u32, Vec<u64>, u64, u64, u64, u64, Vec<u64>) {
        (
            r.instructions,
            r.cycles,
            r.exit_code,
            r.pc_counts.clone(),
            r.icache_misses,
            r.mispredicts,
            r.taken_branches,
            r.mem_ops,
            r.taken_counts.clone(),
        )
    }

    #[test]
    fn batched_icache_and_predictor_counts_match_reference_on_crafted_trace() {
        // A two-level loop: the inner branch alternates taken/untaken
        // (exercising predictor training and mispredicts), the outer
        // back edge stays taken, and a tiny I-cache forces conflict
        // misses on every pass over the loop body. The batched
        // per-block probes and the reference's per-instruction probes
        // must count identically.
        let mut a = Assembler::new();
        let outer = a.new_label();
        let skip = a.new_label();
        a.mov(Operand::imm(40), IntReg::O1);
        a.mov(Operand::imm(0), IntReg::O0);
        a.bind(outer);
        a.alu(
            eel_sparc::AluOp::AndCc,
            IntReg::O1,
            Operand::imm(1),
            IntReg::O2,
        );
        a.b(Cond::E, skip);
        a.nop();
        a.add(IntReg::O0, Operand::imm(3), IntReg::O0);
        a.bind(skip);
        a.add(IntReg::O0, Operand::imm(1), IntReg::O0);
        a.subcc(IntReg::O1, Operand::imm(1), IntReg::O1);
        a.b(Cond::Ne, outer);
        a.nop();
        a.ta(0);
        let exe = Executable::from_words(
            0x10000,
            a.finish().unwrap().iter().map(|i| i.encode()).collect(),
        );
        let model = MachineModel::ultrasparc();
        let cfg = RunConfig {
            timing: Some(TimingConfig {
                taken_branch_penalty: 1,
                icache: Some(ICacheConfig {
                    size: 32,
                    line: 16,
                    miss_penalty: 6,
                }),
                dcache: None,
                predictor: Some(BranchPredictorConfig::default()),
            }),
            ..RunConfig::default()
        };
        let fast = run(&exe, Some(&model), &cfg).unwrap();
        let reference = crate::ReferenceCpu::run(&exe, Some(&model), &cfg).unwrap();
        assert!(fast.icache_misses > 2, "{}", fast.icache_misses);
        assert!(fast.mispredicts > 2, "{}", fast.mispredicts);
        assert_eq!(observables(&fast), observables(&reference));
    }

    #[test]
    fn batched_flush_counts_match_reference_on_random_traces() {
        // Pseudo-random straight-line bodies inside a branchy loop
        // skeleton, replayed under a small I-cache and a predictor.
        // An LCG drives instruction selection so the test is
        // deterministic without an RNG dependency.
        let mut seed = 0x2545_f491_4f6c_dd1du64;
        let mut next = move |bound: u32| {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) as u32) % bound
        };
        for case in 0..8 {
            let mut a = Assembler::new();
            let top = a.new_label();
            let skip = a.new_label();
            a.set(Executable::DEFAULT_DATA_BASE, IntReg::O5);
            a.mov(Operand::imm(20 + case), IntReg::O1);
            a.bind(top);
            for _ in 0..next(12) + 2 {
                let rd = [IntReg::O0, IntReg::O2, IntReg::O3, IntReg::O4][next(4) as usize];
                match next(4) {
                    0 => a.add(IntReg::O0, Operand::imm(i32::from(next(64) as u16)), rd),
                    1 => a.sethi(next(1 << 22), rd),
                    2 => a.ld(eel_sparc::Address::base_imm(IntReg::O5, 0), rd),
                    _ => a.st(rd, eel_sparc::Address::base_imm(IntReg::O5, 4)),
                };
            }
            a.alu(
                eel_sparc::AluOp::AndCc,
                IntReg::O1,
                Operand::imm(i32::from(next(3) as u16 + 1)),
                IntReg::O2,
            );
            a.b(Cond::E, skip);
            a.nop();
            a.add(IntReg::O0, Operand::imm(1), IntReg::O0);
            a.bind(skip);
            a.subcc(IntReg::O1, Operand::imm(1), IntReg::O1);
            a.b(Cond::Ne, top);
            a.nop();
            a.ta(0);
            let mut exe = Executable::from_words(
                0x10000,
                a.finish().unwrap().iter().map(|i| i.encode()).collect(),
            );
            exe.reserve_bss(64);
            let cfg = RunConfig {
                timing: Some(TimingConfig {
                    taken_branch_penalty: next(3),
                    icache: Some(ICacheConfig {
                        size: 64,
                        line: 16,
                        miss_penalty: 1 + next(8),
                    }),
                    dcache: None,
                    predictor: Some(BranchPredictorConfig::default()),
                }),
                ..RunConfig::default()
            };
            for model in [MachineModel::ultrasparc(), MachineModel::supersparc()] {
                let fast = run(&exe, Some(&model), &cfg).unwrap();
                let reference = crate::ReferenceCpu::run(&exe, Some(&model), &cfg).unwrap();
                assert_eq!(
                    observables(&fast),
                    observables(&reference),
                    "case {case}, machine {}",
                    model.name()
                );
            }
        }
    }

    #[test]
    fn seconds_conversion() {
        let exe = loop_program(10);
        let model = MachineModel::supersparc();
        let r = run(
            &exe,
            Some(&model),
            &RunConfig {
                timing: Some(TimingConfig::default()),
                ..RunConfig::default()
            },
        )
        .unwrap();
        let s = r.seconds(model.clock_mhz());
        assert!(s > 0.0 && s < 1.0);
    }
}
