//! The interpretive reference simulator: the original per-instruction
//! fetch → decode → issue → execute loop, retained verbatim as the
//! oracle the block-memoized fast path (`crate::block`) is pinned to.
//!
//! [`ReferenceCpu`] is the public face: it always takes the
//! per-instruction path, regardless of configuration or environment.
//! `crate::run` routes through the same loop whenever a run is not
//! eligible for block replay (functional-only runs, data-cache
//! modeling, stall attribution, or `EEL_NO_BLOCK_CACHE=1`), so the
//! two entry points cannot drift apart.

use eel_edit::Executable;
use eel_pipeline::{MachineModel, PipelineState, PreparedInsn, StallRecorder};
use eel_sparc::Instruction;
use eel_telemetry::Sink;

use crate::cpu::{Cpu, Step};
use crate::error::SimError;
use crate::icache::{ICache, ICacheConfig};
use crate::memory::Memory;
use crate::predictor::BranchPredictor;
use crate::run::{RunConfig, RunResult};

/// The interpretive simulator: executes one instruction at a time,
/// issuing each through the pipeline model as it retires.
///
/// This is the slow, obviously-correct formulation. The block-level
/// replay engine behind [`crate::run`] must agree with it exactly —
/// cycle counts, per-word profiles, cache and predictor counters,
/// stall attribution, and faults — which the differential property
/// test `tests/block_vs_reference.rs` pins on random programs across
/// all shipped machines.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReferenceCpu;

impl ReferenceCpu {
    /// Runs `exe` to completion on the per-instruction path.
    ///
    /// # Errors
    ///
    /// Propagates any [`SimError`] fault, like [`crate::run`].
    pub fn run(
        exe: &Executable,
        model: Option<&MachineModel>,
        config: &RunConfig,
    ) -> Result<RunResult, SimError> {
        run_interpretive(exe, model, config, &())
    }

    /// [`ReferenceCpu::run`] observed through a telemetry sink.
    ///
    /// # Errors
    ///
    /// As [`ReferenceCpu::run`].
    pub fn run_with<S: Sink>(
        exe: &Executable,
        model: Option<&MachineModel>,
        config: &RunConfig,
        sink: &S,
    ) -> Result<RunResult, SimError> {
        run_interpretive(exe, model, config, sink)
    }
}

/// The per-instruction retire loop shared by [`ReferenceCpu`] and the
/// ineligible-configuration fallback in [`crate::run::run_with`].
pub(crate) fn run_interpretive<S: Sink>(
    exe: &Executable,
    model: Option<&MachineModel>,
    config: &RunConfig,
    sink: &S,
) -> Result<RunResult, SimError> {
    let start = if S::ENABLED {
        Some(std::time::Instant::now())
    } else {
        None
    };
    let mut decode_rebuilds = 0u64;
    let mut prepare_rebuilds = 0u64;
    let mut mem = Memory::load(exe);
    let mut cpu = Cpu::new(exe.entry());
    let mut pc_counts = vec![0u64; exe.text_len()];
    let mut taken_counts = vec![0u64; exe.text_len()];

    let timing = config.timing.as_ref().zip(model);
    let mut pipe = model.map(PipelineState::new);
    let mut icache = timing.and_then(|(t, _)| t.icache).map(ICache::new);
    let mut dcache = timing.and_then(|(t, _)| t.dcache).map(|c| {
        ICache::new(ICacheConfig {
            size: c.size,
            line: c.line,
            miss_penalty: c.miss_penalty,
        })
    });
    let mut predictor = timing
        .and_then(|(t, _)| t.predictor)
        .map(BranchPredictor::new);

    let mut recorder = if config.attribute_stalls && timing.is_some() {
        Some(StallRecorder::new())
    } else {
        None
    };
    let mut instructions = 0u64;
    let mut taken_branches = 0u64;
    let mut mem_ops = 0u64;
    let mut last_complete = 0u64;

    // Per-text-word caches, validated against the fetched word so even
    // self-modifying text stays correct (a stale entry just misses and
    // is rebuilt). Hot loops decode and model-resolve each instruction
    // once instead of on every dynamic execution.
    let mut decoded: Vec<Option<(u32, Instruction)>> = vec![None; exe.text_len()];
    let mut prepared: Vec<Option<(u32, PreparedInsn)>> = if timing.is_some() {
        vec![None; exe.text_len()]
    } else {
        Vec::new()
    };

    loop {
        if instructions >= config.max_instructions {
            return Err(SimError::InstructionLimit {
                limit: config.max_instructions,
                retired: instructions,
            });
        }
        let pc = cpu.pc;
        let word = mem.fetch(pc)?;
        let word_idx = ((pc - exe.text_base()) / 4) as usize;
        pc_counts[word_idx] += 1;
        let insn = match decoded[word_idx] {
            Some((w, i)) if w == word => i,
            _ => {
                if S::ENABLED {
                    decode_rebuilds += 1;
                }
                let i = Instruction::decode(word);
                decoded[word_idx] = Some((word, i));
                i
            }
        };

        if let (Some((tc, model)), Some(pipe)) = (timing, pipe.as_mut()) {
            if let Some(cache) = icache.as_mut() {
                if !cache.access(pc) {
                    pipe.advance(u64::from(cache.penalty()));
                }
            }
            let p = match prepared[word_idx] {
                Some((w, p)) if w == word => p,
                _ => {
                    if S::ENABLED {
                        prepare_rebuilds += 1;
                    }
                    let p = model.prepare(&insn);
                    prepared[word_idx] = Some((word, p));
                    p
                }
            };
            let info = match recorder.as_mut() {
                Some(rec) => {
                    let info = pipe.issue_with(model, &insn, &p, rec);
                    rec.note_issue(word_idx as u32, &insn);
                    info
                }
                None => pipe.issue_prepared(model, &insn, &p),
            };
            last_complete = last_complete.max(info.completes);
            if let (Some(cache), Some(addr)) = (dcache.as_mut(), insn.mem_address()) {
                // The access address is computable before the step:
                // registers still hold their pre-execution values.
                let offset = match addr.offset {
                    eel_sparc::Operand::Reg(r) => cpu.reg(r),
                    eel_sparc::Operand::Imm(v) => v as i32 as u32,
                };
                let ea = cpu.reg(addr.base).wrapping_add(offset);
                if !cache.access(ea) && insn.is_load() {
                    pipe.add_result_latency(&insn, u64::from(cache.penalty()));
                }
            }
            let _ = tc;
        }

        if insn.is_mem() {
            mem_ops += 1;
        }
        let step = cpu.step_decoded(&mut mem, &insn)?;
        instructions += 1;
        match step {
            Step::Continue { taken_cti } => {
                if let Some(p) = predictor.as_mut() {
                    if insn.control_kind() == eel_sparc::ControlKind::CondBranch
                        && p.observe(pc, taken_cti)
                    {
                        if let Some(pipe) = pipe.as_mut() {
                            pipe.advance(u64::from(p.penalty()));
                        }
                    }
                }
                if taken_cti {
                    taken_branches += 1;
                    taken_counts[word_idx] += 1;
                    if let (Some((tc, _)), Some(pipe)) = (timing, pipe.as_mut()) {
                        if tc.taken_branch_penalty > 0 {
                            pipe.advance(u64::from(tc.taken_branch_penalty));
                        }
                    }
                }
            }
            Step::Exit(code) => {
                let cycles = if timing.is_some() {
                    last_complete + 1
                } else {
                    0
                };
                if S::ENABLED {
                    sink.add("sim.runs", 1);
                    sink.add("sim.instructions", instructions);
                    sink.add("sim.cycles", cycles);
                    sink.add("sim.mem_ops", mem_ops);
                    sink.add("sim.taken_branches", taken_branches);
                    sink.add("sim.decode_rebuilds", decode_rebuilds);
                    sink.add("sim.prepare_rebuilds", prepare_rebuilds);
                    sink.record("sim.run_cycles", cycles);
                    if let Some(t0) = start {
                        sink.record("sim.run_ns", t0.elapsed().as_nanos() as u64);
                    }
                }
                return Ok(RunResult {
                    instructions,
                    cycles,
                    exit_code: code,
                    pc_counts,
                    icache_misses: icache.map(|c| c.misses()).unwrap_or(0),
                    dcache_misses: dcache.map(|c| c.misses()).unwrap_or(0),
                    mispredicts: predictor.map(|p| p.mispredicts()).unwrap_or(0),
                    taken_branches,
                    mem_ops,
                    taken_counts,
                    memory: mem,
                    stall_profile: recorder.map(StallRecorder::into_profile),
                });
            }
        }
    }
}
