//! A direct-mapped instruction cache model.
//!
//! The paper (§4.1) notes that scheduling cannot reduce the extra
//! instruction-cache misses instrumentation causes: profiling grows a
//! program's text 2–3×, and by the Lebeck–Wood model a size growth of
//! ×E grows misses roughly ×(E·√E). This model lets the benchmark
//! harness reproduce that effect.

/// Configuration of the data cache (same direct-mapped geometry as
/// the instruction cache; misses extend the load's result latency).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DCacheConfig {
    /// Total capacity in bytes (power of two).
    pub size: u32,
    /// Line size in bytes (power of two).
    pub line: u32,
    /// Extra result-latency cycles for a load miss.
    pub miss_penalty: u32,
}

impl Default for DCacheConfig {
    /// 16 KiB, 32-byte lines, 10-cycle miss penalty.
    fn default() -> DCacheConfig {
        DCacheConfig {
            size: 16 * 1024,
            line: 32,
            miss_penalty: 10,
        }
    }
}

/// Configuration of the instruction cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ICacheConfig {
    /// Total capacity in bytes (power of two).
    pub size: u32,
    /// Line size in bytes (power of two).
    pub line: u32,
    /// Extra cycles charged per miss.
    pub miss_penalty: u32,
}

impl Default for ICacheConfig {
    /// 16 KiB, 32-byte lines, 8-cycle miss penalty — the scale of the
    /// on-chip I-caches of the paper's machines.
    fn default() -> ICacheConfig {
        ICacheConfig {
            size: 16 * 1024,
            line: 32,
            miss_penalty: 8,
        }
    }
}

/// A direct-mapped instruction cache.
#[derive(Debug, Clone)]
pub struct ICache {
    config: ICacheConfig,
    tags: Vec<Option<u32>>,
    hits: u64,
    misses: u64,
}

impl ICache {
    /// An empty cache with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics unless `size` and `line` are powers of two with
    /// `size >= line`.
    pub fn new(config: ICacheConfig) -> ICache {
        assert!(
            config.size.is_power_of_two(),
            "cache size must be a power of two"
        );
        assert!(
            config.line.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(config.size >= config.line, "cache smaller than one line");
        let sets = (config.size / config.line) as usize;
        ICache {
            config,
            tags: vec![None; sets],
            hits: 0,
            misses: 0,
        }
    }

    /// Looks up (and fills) the line containing `addr`. Returns whether
    /// it hit.
    pub fn access(&mut self, addr: u32) -> bool {
        let line_addr = addr / self.config.line;
        let set = (line_addr as usize) % self.tags.len();
        let tag = line_addr / self.tags.len() as u32;
        if self.tags[set] == Some(tag) {
            self.hits += 1;
            true
        } else {
            self.tags[set] = Some(tag);
            self.misses += 1;
            false
        }
    }

    /// Cycles to charge for the most recent access (0 on hit).
    pub fn penalty(&self) -> u32 {
        self.config.miss_penalty
    }

    /// Line size in bytes.
    pub fn line(&self) -> u32 {
        self.config.line
    }

    /// Number of sets (direct-mapped: lines).
    pub fn sets(&self) -> usize {
        self.tags.len()
    }

    /// The cache's fill generation. A direct-mapped cache's tag array
    /// only changes on a miss, so two equal generations bracket a span
    /// in which every previously-hitting address still hits — the
    /// basis for the simulator's batched block probes.
    pub fn generation(&self) -> u64 {
        self.misses
    }

    /// Credits `n` hits without probing — for callers that have proven
    /// (via [`Self::generation`]) that each access would hit, which
    /// leaves the tags untouched.
    pub fn record_hits(&mut self, n: u64) {
        self.hits += n;
    }

    /// Total hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Total misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Miss rate over all accesses (0 if none).
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_accesses_hit_within_a_line() {
        let mut c = ICache::new(ICacheConfig {
            size: 1024,
            line: 32,
            miss_penalty: 8,
        });
        assert!(!c.access(0));
        for a in (4..32).step_by(4) {
            assert!(c.access(a), "{a:#x} within the first line");
        }
        assert!(!c.access(32), "next line misses");
        assert_eq!(c.misses(), 2);
        assert_eq!(c.hits(), 7);
    }

    #[test]
    fn conflicting_lines_evict() {
        let mut c = ICache::new(ICacheConfig {
            size: 64,
            line: 32,
            miss_penalty: 8,
        });
        assert!(!c.access(0));
        assert!(!c.access(64), "maps to set 0, evicts");
        assert!(!c.access(0), "evicted");
    }

    #[test]
    fn loop_fitting_in_cache_hits() {
        let mut c = ICache::new(ICacheConfig::default());
        for _ in 0..10 {
            for pc in (0x10000..0x10100).step_by(4) {
                c.access(pc);
            }
        }
        assert_eq!(c.misses(), 8, "256 bytes = 8 lines, cold misses only");
        assert!(c.miss_rate() < 0.02);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        ICache::new(ICacheConfig {
            size: 1000,
            line: 32,
            miss_penalty: 8,
        });
    }
}
