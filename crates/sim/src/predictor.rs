//! A two-bit saturating-counter branch predictor, the mechanism of the
//! paper-era machines (the UltraSPARC-I kept 2-bit state per I-cache
//! pair). The scheduler's model knows nothing of prediction — §3.2's
//! list of what the descriptions omit — so this belongs only to the
//! measured machine.

/// Configuration of the branch predictor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchPredictorConfig {
    /// Number of two-bit counters (a power of two), indexed by the
    /// branch address.
    pub entries: u32,
    /// Cycles charged for a mispredicted conditional branch.
    pub mispredict_penalty: u32,
}

impl Default for BranchPredictorConfig {
    /// 1024 counters, 4-cycle mispredict penalty.
    fn default() -> BranchPredictorConfig {
        BranchPredictorConfig {
            entries: 1024,
            mispredict_penalty: 4,
        }
    }
}

/// Two-bit saturating counters: 0,1 predict untaken; 2,3 predict taken.
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    config: BranchPredictorConfig,
    table: Vec<u8>,
    mispredicts: u64,
    predictions: u64,
}

impl BranchPredictor {
    /// A predictor with all counters weakly-untaken.
    ///
    /// # Panics
    ///
    /// Panics unless `entries` is a power of two.
    pub fn new(config: BranchPredictorConfig) -> BranchPredictor {
        assert!(
            config.entries.is_power_of_two(),
            "entries must be a power of two"
        );
        BranchPredictor {
            config,
            table: vec![1; config.entries as usize],
            mispredicts: 0,
            predictions: 0,
        }
    }

    fn slot(&mut self, pc: u32) -> &mut u8 {
        let idx = ((pc >> 2) & (self.config.entries - 1)) as usize;
        &mut self.table[idx]
    }

    /// Predicts the branch at `pc`, learns from the real `taken`
    /// outcome, and reports whether the prediction was wrong.
    pub fn observe(&mut self, pc: u32, taken: bool) -> bool {
        self.predictions += 1;
        let counter = self.slot(pc);
        let predicted_taken = *counter >= 2;
        if taken {
            *counter = (*counter + 1).min(3);
        } else {
            *counter = counter.saturating_sub(1);
        }
        let wrong = predicted_taken != taken;
        if wrong {
            self.mispredicts += 1;
        }
        wrong
    }

    /// Cycles to charge per mispredict.
    pub fn penalty(&self) -> u32 {
        self.config.mispredict_penalty
    }

    /// Total mispredictions so far.
    pub fn mispredicts(&self) -> u64 {
        self.mispredicts
    }

    /// Misprediction rate over all observed conditional branches.
    pub fn mispredict_rate(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.predictions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_a_biased_branch() {
        let mut p = BranchPredictor::new(BranchPredictorConfig::default());
        // A loop back edge: taken 99 times, untaken once.
        let mut wrong = 0;
        for k in 0..100 {
            if p.observe(0x10010, k != 99) {
                wrong += 1;
            }
        }
        assert!(wrong <= 3, "warmup + final exit only, got {wrong}");
    }

    #[test]
    fn alternating_branch_confounds_two_bit_counters() {
        let mut p = BranchPredictor::new(BranchPredictorConfig::default());
        let mut wrong = 0;
        for k in 0..100 {
            if p.observe(0x10010, k % 2 == 0) {
                wrong += 1;
            }
        }
        assert!(wrong >= 40, "alternation defeats 2-bit counters: {wrong}");
    }

    #[test]
    fn distinct_branches_use_distinct_counters() {
        let mut p = BranchPredictor::new(BranchPredictorConfig::default());
        for _ in 0..10 {
            p.observe(0x10000, true);
            p.observe(0x10004, false);
        }
        // Both are well-predicted despite opposite biases.
        assert!(!p.observe(0x10000, true));
        assert!(!p.observe(0x10004, false));
    }

    #[test]
    fn rate_accounts_all_observations() {
        let mut p = BranchPredictor::new(BranchPredictorConfig {
            entries: 16,
            mispredict_penalty: 4,
        });
        for _ in 0..8 {
            p.observe(0x10000, true);
        }
        assert!(p.mispredict_rate() < 0.5);
        assert_eq!(p.penalty(), 4);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_entry_count_rejected() {
        BranchPredictor::new(BranchPredictorConfig {
            entries: 1000,
            mispredict_penalty: 4,
        });
    }
}
