//! Simulator error type.

use std::error::Error;
use std::fmt;

/// A fault raised by the simulated machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// Control reached an address outside the text segment (or an
    /// unaligned one).
    BadPc {
        /// The bad program counter.
        pc: u32,
    },
    /// A data access was not aligned to its size.
    Unaligned {
        /// The address accessed.
        addr: u32,
        /// The access size in bytes.
        size: u32,
    },
    /// A store targeted the read-only text segment.
    TextWrite {
        /// The address written.
        addr: u32,
    },
    /// An undecodable instruction word was executed.
    IllegalInstruction {
        /// Program counter of the instruction.
        pc: u32,
        /// The raw word.
        word: u32,
    },
    /// Integer division by zero.
    DivisionByZero {
        /// Program counter of the divide.
        pc: u32,
    },
    /// `restore` with no register window to return to.
    WindowUnderflow {
        /// Program counter of the restore.
        pc: u32,
    },
    /// A `Ticc` trap number the simulator does not implement.
    UnhandledTrap {
        /// Program counter of the trap.
        pc: u32,
        /// The software trap number.
        number: u32,
    },
    /// The instruction budget was exhausted (runaway program guard).
    InstructionLimit {
        /// The limit that was hit.
        limit: u64,
        /// Instructions retired before the budget ran out.
        retired: u64,
    },
    /// A doubleword register operation named an odd register.
    OddRegisterPair {
        /// Program counter of the instruction.
        pc: u32,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::BadPc { pc } => write!(f, "control transferred to bad pc {pc:#x}"),
            SimError::Unaligned { addr, size } => {
                write!(f, "unaligned {size}-byte access at {addr:#x}")
            }
            SimError::TextWrite { addr } => write!(f, "store into text at {addr:#x}"),
            SimError::IllegalInstruction { pc, word } => {
                write!(f, "illegal instruction {word:#010x} at {pc:#x}")
            }
            SimError::DivisionByZero { pc } => write!(f, "division by zero at {pc:#x}"),
            SimError::WindowUnderflow { pc } => {
                write!(f, "register window underflow at {pc:#x}")
            }
            SimError::UnhandledTrap { pc, number } => {
                write!(f, "unhandled trap {number} at {pc:#x}")
            }
            SimError::InstructionLimit { limit, retired } => {
                write!(
                    f,
                    "instruction limit of {limit} exhausted after retiring {retired} instructions"
                )
            }
            SimError::OddRegisterPair { pc } => {
                write!(f, "doubleword operation names an odd register at {pc:#x}")
            }
        }
    }
}

impl Error for SimError {}
