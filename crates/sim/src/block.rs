//! Block-memoized timing simulation: the fast path behind
//! [`crate::run`].
//!
//! The interpretive reference loop (`crate::reference`) re-decodes,
//! re-resolves, and re-times the same hot basic blocks millions of
//! times. This module does each of those once per *static* block and
//! replays the results:
//!
//! * **Block cache** — at the first execution of a straight-line
//!   region the builder decodes forward from the entry point to the
//!   first control transfer (or trap, undecodable word, text end, or
//!   length cap) and stores the decoded instructions, their
//!   model-resolved [`PreparedInsn`]s, and a flat table of lowered
//!   micro-ops for dispatch. Text is immutable during a run
//!   ([`SimError::TextWrite`]), so a built block never goes stale
//!   mid-run; across runs of *edited* executables the cache is simply
//!   rebuilt (it lives per run), and the timing memo below is keyed by
//!   content hash, exactly like the engine's artifact cache, so two
//!   identical blocks at different addresses — common in instrumented
//!   code — share one timing entry and an edited block can never
//!   replay a stale one.
//! * **Timing memo** — the pipeline effect of issuing a block depends
//!   only on the block's instructions and the *entry pipeline
//!   context* (live register availability and unit occupancy relative
//!   to the issue cycle — see [`PipelineState::context_key`]). The
//!   memo maps `(content hash, context id)` to a captured
//!   [`BlockTransition`]; a hit replays the whole block's issue walk
//!   in O(live state) instead of O(instructions). The context id is a
//!   hash chain advanced at every pipeline event (a replayed or
//!   captured transition, an `advance`), which identifies the entry
//!   context without rescanning the scoreboard: a transition leaves
//!   the pipe in a state that is a pure function of the transition
//!   itself, so equal chains imply equal contexts. Debug builds
//!   verify every hit against the canonical serialized context.
//! * **Batched I-cache and predictor updates** — fetch probes for a
//!   block are issued in program order in one batch at block entry
//!   (the resulting miss pattern folds into the timing-memo key, so
//!   penalties still land between the right issues on a memo walk);
//!   conditional-branch outcomes are observed once at block exit
//!   (the branch is always the last instruction). Hit/miss and
//!   mispredict counts *and* cycles are identical to the
//!   per-instruction reference — the probe and observe sequences are
//!   the same — which tests in `crate::run` pin on crafted and random
//!   traces.
//!
//! Functional execution stays exact and per-instruction: every
//! retired instruction is interpreted against architectural state,
//! but through the block's pre-decoded flat ops (no fetch, no decode,
//! no per-instruction profile counter — per-word execution counts are
//! reconstructed from per-block execution counts at run end). Delay
//! slots (`npc != pc + 4`) and instruction-budget boundaries fall
//! back to single-stepping, which shares the timing memo via
//! one-instruction transitions.
//!
//! Runs using a data-cache model or stall attribution take the
//! reference path instead: both interleave per-instruction pipeline
//! interaction that block replay cannot batch without changing
//! observable results.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use eel_edit::Executable;
use eel_pipeline::{BlockTransition, MachineModel, PipelineState, PreparedInsn};
use eel_sparc::{
    AluOp, Cond, ControlKind, FCond, FpOp, FpReg, Instruction, IntReg, MemWidth, Operand,
};
use eel_telemetry::Sink;

use crate::cpu::{Cpu, Step};
use crate::error::SimError;
use crate::icache::ICache;
use crate::memory::Memory;
use crate::predictor::BranchPredictor;
use crate::run::{RunConfig, RunResult, TimingConfig};

/// Longest straight-line block the builder will form; regions longer
/// than this are split into chained blocks.
const MAX_BLOCK_LEN: usize = 64;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// fnv1a over a word slice — the block content hash, matching the
/// engine's artifact-cache construction.
fn fnv1a64(words: &[u32]) -> u64 {
    let mut h = FNV_OFFSET;
    for w in words {
        for b in w.to_le_bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
    }
    h
}

/// One fnv-style step of the context-id hash chain.
fn chain(h: u64, tag: u64, v: u64) -> u64 {
    let h = (h ^ tag).wrapping_mul(FNV_PRIME);
    (h ^ v).wrapping_mul(FNV_PRIME)
}

/// Context-chain event tags (arbitrary distinct constants).
const CTX_ADVANCE: u64 = 0x61;
const CTX_MISS: u64 = 0x6d;

/// A keyed fnv1a hasher for the timing-memo map: the keys are two
/// already well-mixed u64s, so SipHash would be pure overhead on the
/// hottest lookup in the simulator.
#[derive(Default)]
struct FnvHasher(u64);

impl Hasher for FnvHasher {
    fn write(&mut self, bytes: &[u8]) {
        let mut h = if self.0 == 0 { FNV_OFFSET } else { self.0 };
        for &b in bytes {
            h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
        self.0 = h;
    }

    // The memo key is two u64s; one mix per word instead of eight
    // byte steps (this is the hottest hash in the simulator).
    fn write_u64(&mut self, v: u64) {
        let h = if self.0 == 0 { FNV_OFFSET } else { self.0 };
        self.0 = (h ^ v).wrapping_mul(FNV_PRIME);
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

type FnvMap<K, V> = HashMap<K, V, BuildHasherDefault<FnvHasher>>;

/// A lowered micro-op for the replay dispatch loop: every
/// straight-line instruction, with the hottest shapes (ALU, word
/// load/store with immediate offset, `sethi`) pre-extracted so replay
/// is one flat match with no nested operand decoding, and the rest
/// dispatching straight to the shared [`Cpu`] execution helpers —
/// skipping `step_decoded`'s outer decode match and pc/npc
/// bookkeeping. Only the block terminator (a control transfer, trap,
/// or undecodable word) interprets generically as [`BlockOp::Other`].
#[derive(Debug, Clone, Copy)]
enum BlockOp {
    AluImm {
        op: AluOp,
        rs1: IntReg,
        imm: u32,
        rd: IntReg,
    },
    AluReg {
        op: AluOp,
        rs1: IntReg,
        rs2: IntReg,
        rd: IntReg,
    },
    Sethi {
        value: u32,
        rd: IntReg,
    },
    LoadWordImm {
        base: IntReg,
        off: u32,
        rd: IntReg,
    },
    StoreWordImm {
        src: IntReg,
        base: IntReg,
        off: u32,
    },
    Load {
        width: MemWidth,
        base: IntReg,
        off: Operand,
        rd: IntReg,
    },
    Store {
        width: MemWidth,
        src: IntReg,
        base: IntReg,
        off: Operand,
    },
    LoadFp {
        double: bool,
        base: IntReg,
        off: Operand,
        rd: FpReg,
    },
    StoreFp {
        double: bool,
        src: FpReg,
        base: IntReg,
        off: Operand,
    },
    Fp {
        op: FpOp,
        rs1: FpReg,
        rs2: FpReg,
        rd: FpReg,
    },
    FCmp {
        double: bool,
        rs1: FpReg,
        rs2: FpReg,
    },
    Save {
        rs1: IntReg,
        src2: Operand,
        rd: IntReg,
    },
    Restore {
        rs1: IntReg,
        src2: Operand,
        rd: IntReg,
    },
    RdY {
        rd: IntReg,
    },
    WrY {
        rs1: IntReg,
        src2: Operand,
    },
    /// The terminator: interpret `insns[i]` generically for control
    /// flow (never an interior op).
    Other,
}

fn lower(insn: &Instruction) -> BlockOp {
    match *insn {
        Instruction::Alu { op, rs1, src2, rd } => match src2 {
            Operand::Imm(v) => BlockOp::AluImm {
                op,
                rs1,
                imm: v as i32 as u32,
                rd,
            },
            Operand::Reg(rs2) => BlockOp::AluReg { op, rs1, rs2, rd },
        },
        Instruction::Sethi { imm22, rd } => BlockOp::Sethi {
            value: imm22 << 10,
            rd,
        },
        Instruction::Load {
            width: MemWidth::Word,
            addr:
                eel_sparc::Address {
                    base,
                    offset: Operand::Imm(v),
                },
            rd,
        } => BlockOp::LoadWordImm {
            base,
            off: v as i32 as u32,
            rd,
        },
        Instruction::Load { width, addr, rd } => BlockOp::Load {
            width,
            base: addr.base,
            off: addr.offset,
            rd,
        },
        Instruction::Store {
            width: MemWidth::Word,
            src,
            addr:
                eel_sparc::Address {
                    base,
                    offset: Operand::Imm(v),
                },
        } => BlockOp::StoreWordImm {
            src,
            base,
            off: v as i32 as u32,
        },
        Instruction::Store { width, src, addr } => BlockOp::Store {
            width,
            src,
            base: addr.base,
            off: addr.offset,
        },
        Instruction::LoadFp { double, addr, rd } => BlockOp::LoadFp {
            double,
            base: addr.base,
            off: addr.offset,
            rd,
        },
        Instruction::StoreFp { double, src, addr } => BlockOp::StoreFp {
            double,
            src,
            base: addr.base,
            off: addr.offset,
        },
        Instruction::Fp { op, rs1, rs2, rd } => BlockOp::Fp { op, rs1, rs2, rd },
        Instruction::FCmp { double, rs1, rs2 } => BlockOp::FCmp { double, rs1, rs2 },
        Instruction::Save { rs1, src2, rd } => BlockOp::Save { rs1, src2, rd },
        Instruction::Restore { rs1, src2, rd } => BlockOp::Restore { rs1, src2, rd },
        Instruction::RdY { rd } => BlockOp::RdY { rd },
        Instruction::WrY { rs1, src2 } => BlockOp::WrY { rs1, src2 },
        _ => BlockOp::Other,
    }
}

/// The block terminator, lowered for direct control-flow dispatch.
/// Branch targets are absolute (blocks are cached per address).
#[derive(Debug, Clone, Copy)]
enum TermOp {
    Branch {
        cond: Cond,
        annul: bool,
        uncond: bool,
        target: u32,
    },
    FBranch {
        cond: FCond,
        annul: bool,
        uncond: bool,
        target: u32,
    },
    Call {
        target: u32,
    },
    /// `jmpl`, traps, undecodable words: interpret generically.
    Generic,
}

/// Ways in the per-block memo shortcut (see [`Block::hints`]).
const HINT_WAYS: usize = 4;

/// The delay slot after a block's terminator, precached at build time
/// so a taken control transfer can execute its slot inline — without
/// a fetch, decode-cache probe, or trip around the dispatch loop.
/// Only built for straight-line slot instructions (a control transfer
/// or trap in a delay slot falls back to single-stepping).
struct SlotInfo {
    insn: Instruction,
    prepared: PreparedInsn,
    op: BlockOp,
    /// fnv1a of the slot word — the same memo key a one-instruction
    /// single-step would use, so fused and stepped executions share
    /// memo entries.
    content: u64,
    addr: u32,
    is_mem: bool,
    /// I-cache fill generation of the last hitting probe, as
    /// [`Block::probe_gen`].
    probe_gen: u64,
    /// Memo shortcut, as [`Block::hints`].
    hints: [(u64, u64, u32); HINT_WAYS],
}

/// A built basic block: one decode/`prepare`/lowering walk, reused by
/// every dynamic execution entering at `start`.
struct Block {
    /// First text-word index.
    start: usize,
    /// Decoded instructions; the terminator is last.
    insns: Vec<Instruction>,
    /// Model-resolved operands, parallel to `insns`.
    prepared: Vec<PreparedInsn>,
    /// Lowered dispatch table, parallel to `insns` (terminator is
    /// always [`BlockOp::Other`], so replay handles its control flow
    /// generically).
    ops: Vec<BlockOp>,
    /// The lowered terminator.
    term: TermOp,
    /// The precached delay slot, when fusable.
    slot: Option<Box<SlotInfo>>,
    /// fnv1a of the block's words — the timing-memo key prefix.
    content: u64,
    /// Loads + stores in the block.
    mem_ops: u64,
    /// Whether the terminator is a conditional branch (predictor
    /// observation point).
    cond_branch: bool,
    /// Completed executions, expanded into per-word counts at run end.
    execs: u64,
    /// I-cache fill generation as of this block's last all-hit probe
    /// (`u64::MAX` = none): while the generation is unchanged no tag
    /// can have been evicted, so a re-probe would hit on every word
    /// and is skipped.
    probe_gen: u64,
    /// A small direct-mapped cache of `(memo key, entry context id,
    /// memo entry)` from recent executions, indexed by the context
    /// id's low bits — a shortcut past the memo map for steady-state
    /// loops whose blocks alternate between a few entry contexts
    /// (call sites, loop phases).
    hints: [(u64, u64, u32); HINT_WAYS],
}

const NO_ENTRY: u32 = u32::MAX;

fn build_block(
    mem: &Memory,
    text_base: u32,
    text_len: usize,
    start: usize,
    model: &MachineModel,
) -> Block {
    let mut words = Vec::new();
    let mut insns = Vec::new();
    let mut at = start;
    loop {
        let word = mem
            .fetch(text_base + 4 * at as u32)
            .expect("block builder stays inside the text segment");
        let insn = Instruction::decode(word);
        words.push(word);
        insns.push(insn);
        // Undecodable words terminate the block like the trap they
        // fault into; the timing walk still issues them first, exactly
        // as the reference loop does before faulting.
        if insn.control_kind() != ControlKind::None || matches!(insn, Instruction::Unknown(_)) {
            break;
        }
        at += 1;
        if insns.len() == MAX_BLOCK_LEN || at >= text_len {
            break;
        }
    }
    let n = insns.len();
    let prepared = insns.iter().map(|i| model.prepare(i)).collect();
    let mut ops: Vec<BlockOp> = insns.iter().map(lower).collect();
    // The terminator's control flow (and possible exit) must run
    // through the generic interpreter.
    ops[n - 1] = BlockOp::Other;
    let term_addr = text_base + 4 * (start + n - 1) as u32;
    let term = match insns[n - 1] {
        Instruction::Branch { cond, annul, disp } => TermOp::Branch {
            cond,
            annul,
            uncond: cond == Cond::A,
            target: term_addr.wrapping_add((disp as i64 * 4) as u32),
        },
        Instruction::FBranch { cond, annul, disp } => TermOp::FBranch {
            cond,
            annul,
            uncond: cond == FCond::A,
            target: term_addr.wrapping_add((disp as i64 * 4) as u32),
        },
        Instruction::Call { disp } => TermOp::Call {
            target: term_addr.wrapping_add((disp as i64 * 4) as u32),
        },
        _ => TermOp::Generic,
    };
    let slot = (start + n < text_len)
        .then(|| {
            let addr = text_base + 4 * (start + n) as u32;
            let word = mem
                .fetch(addr)
                .expect("slot address is inside the text segment");
            let insn = Instruction::decode(word);
            let op = lower(&insn);
            // A control transfer, trap, or undecodable word in the
            // delay slot single-steps instead.
            (insn.control_kind() == ControlKind::None && !matches!(op, BlockOp::Other)).then(|| {
                Box::new(SlotInfo {
                    prepared: model.prepare(&insn),
                    op,
                    content: fnv1a64(&[word]),
                    addr,
                    is_mem: insn.is_mem(),
                    insn,
                    probe_gen: u64::MAX,
                    hints: [(0, 0, NO_ENTRY); HINT_WAYS],
                })
            })
        })
        .flatten();
    Block {
        start,
        content: fnv1a64(&words),
        mem_ops: insns.iter().filter(|i| i.is_mem()).count() as u64,
        cond_branch: insns[n - 1].control_kind() == ControlKind::CondBranch,
        prepared,
        ops,
        term,
        slot,
        insns,
        execs: 0,
        probe_gen: u64::MAX,
        hints: [(0, 0, NO_ENTRY); HINT_WAYS],
    }
}

/// The timing memo: `(content hash, entry context id)` → captured
/// transition. Entries are append-only per run.
#[derive(Default)]
struct TimingMemo {
    map: FnvMap<(u64, u64), u32>,
    transitions: Vec<BlockTransition>,
    /// Context id of the pipe after each transition (a pure function
    /// of the entry index — the exit state is determined by the
    /// transition alone).
    exit_ids: Vec<u64>,
    /// Canonical entry contexts, kept in debug builds to verify every
    /// memo hit against [`PipelineState::context_key`].
    #[cfg(debug_assertions)]
    keys: Vec<Vec<u32>>,
    hits: u64,
    misses: u64,
}

/// Everything a block-replay run threads through its loop.
struct Engine<'a> {
    model: &'a MachineModel,
    mem: Memory,
    cpu: Cpu,
    pipe: PipelineState,
    icache: Option<ICache>,
    predictor: Option<BranchPredictor>,
    pc_counts: Vec<u64>,
    taken_counts: Vec<u64>,
    /// Single-step caches (delay slots, budget boundary), validated
    /// against the fetched word like the reference loop's.
    decoded: Vec<Option<(u32, Instruction)>>,
    prepared: Vec<Option<(u32, PreparedInsn)>>,
    /// Per-word `(entry context id, memo entry)` of the most recent
    /// single-step — the delay-slot analogue of `Block::last_key`.
    step_last: Vec<(u64, u32)>,
    memo: TimingMemo,
    /// The pipeline-context hash chain (see module docs).
    ctx: u64,
    /// Deferred transition application: on a memo hit nothing is
    /// written to the pipe — the hit's entry index is parked here and
    /// only the *last* transition of a hit chain is materialized
    /// (the exit state is a pure function of it alone), when a miss
    /// needs a real pipe to issue against. `None` means the pipe is
    /// current.
    pending: Option<u32>,
    /// What [`PipelineState::cycle`] would read if `pending` were
    /// materialized; equal to it when `pending` is `None`.
    virt_cycle: u64,
    /// Advance cycles accumulated since the pending transition's exit.
    trail_advance: u64,
    #[cfg(debug_assertions)]
    key_scratch: Vec<u32>,
    instructions: u64,
    taken_branches: u64,
    mem_ops: u64,
    last_complete: u64,
    builds: u64,
    fused: u64,
    decode_rebuilds: u64,
    prepare_rebuilds: u64,
    text_base: u32,
    taken_penalty: u64,
    max_instructions: u64,
}

impl Engine<'_> {
    /// Advances the issue point and folds the advance into the
    /// context chain. While a transition application is deferred the
    /// advance is only recorded; materialization replays it.
    fn advance_pipe(&mut self, cycles: u64) {
        if cycles > 0 {
            self.virt_cycle += cycles;
            if self.pending.is_some() {
                self.trail_advance += cycles;
            } else {
                self.pipe.advance(cycles);
            }
            self.ctx = chain(self.ctx, CTX_ADVANCE, cycles);
        }
    }

    /// Brings the pipe up to date with the virtual timing position:
    /// writes the pending transition's exit picture at its exit cycle
    /// and replays any advances recorded since. No-op when nothing is
    /// deferred.
    fn materialize(&mut self) {
        if let Some(i) = self.pending.take() {
            let exit = self.virt_cycle - self.trail_advance;
            self.pipe
                .set_to_transition(&self.memo.transitions[i as usize], exit);
            if self.trail_advance > 0 {
                self.pipe.advance(self.trail_advance);
            }
            self.trail_advance = 0;
        }
        debug_assert_eq!(self.virt_cycle, self.pipe.cycle());
    }

    /// Times an instruction sequence through the memo: replays the
    /// captured transition for `(key, ctx)` or issues the sequence
    /// once and captures it. `missmask` carries this execution's
    /// I-cache misses (bit per instruction, already folded into
    /// `key`): on a memo miss the walk interleaves each miss penalty
    /// before its instruction's issue, exactly like the reference
    /// loop, so replay stays cycle-exact. Updates `last_complete` and
    /// the context chain; returns the memo entry index.
    fn time_sequence(
        &mut self,
        key: u64,
        insns: &[Instruction],
        prepared: &[PreparedInsn],
        hint: u32,
        missmask: u64,
        miss_penalty: u64,
    ) -> u32 {
        // Debug builds keep the pipe current at every event so memo
        // hits can be cross-checked against the canonical context key
        // (this also exercises `set_to_transition` on every hit).
        #[cfg(debug_assertions)]
        {
            self.materialize();
            self.pipe.context_key(&mut self.key_scratch);
        }
        let idx = if hint != NO_ENTRY {
            Some(hint)
        } else {
            self.memo.map.get(&(key, self.ctx)).copied()
        };
        if let Some(i) = idx {
            #[cfg(debug_assertions)]
            debug_assert_eq!(
                self.memo.keys[i as usize], self.key_scratch,
                "context chain aliased two distinct pipeline contexts"
            );
            // Deferred application: nothing touches the pipe. The
            // chain, the completion bound, and the virtual cycle are
            // all derivable from the stored transition, and the exit
            // pipeline state is a pure function of it — so if the
            // next event hits too, this application never needs to
            // happen at all.
            let tr = &self.memo.transitions[i as usize];
            let completes = self.virt_cycle + tr.completes();
            self.last_complete = self.last_complete.max(completes);
            self.virt_cycle += tr.cycles();
            self.trail_advance = 0;
            self.pending = Some(i);
            self.ctx = self.memo.exit_ids[i as usize];
            self.memo.hits += 1;
            #[cfg(debug_assertions)]
            self.materialize();
            return i;
        }
        self.materialize();
        self.memo.misses += 1;
        let entry_cycle = self.pipe.cycle();
        let entry_ctx = self.ctx;
        let mut entry_ring = Vec::new();
        self.pipe.ring_deficit_cells(&mut entry_ring);
        let mut completes = 0u64;
        for (i, (insn, p)) in insns.iter().zip(prepared).enumerate() {
            if missmask & (1u64 << i) != 0 {
                self.pipe.advance(miss_penalty);
            }
            let info = self.pipe.issue_prepared(self.model, insn, p);
            completes = completes.max(info.completes);
        }
        self.last_complete = self.last_complete.max(completes);
        let i = self.memo.transitions.len() as u32;
        let tr = self
            .pipe
            .capture_transition(entry_cycle, completes, entry_ring);
        // The exit pipeline state is a pure function of the applied
        // transition's exit picture, so its id is that picture's hash
        // — distinct executions converging on the same exit state
        // converge the chain, which is what lets steady-state loops
        // hit.
        let exit_id = tr.exit_fingerprint();
        self.memo.transitions.push(tr);
        self.memo.exit_ids.push(exit_id);
        #[cfg(debug_assertions)]
        self.memo.keys.push(std::mem::take(&mut self.key_scratch));
        self.memo.map.insert((key, entry_ctx), i);
        self.ctx = exit_id;
        self.virt_cycle = self.pipe.cycle();
        i
    }

    /// Executes one instruction on the per-instruction path — delay
    /// slots, out-of-text program counters (which fault here exactly
    /// as in the reference), and the tail of the instruction budget.
    /// Returns the exit code if the program finished.
    fn step_one(&mut self) -> Result<Option<u32>, SimError> {
        if self.instructions >= self.max_instructions {
            return Err(SimError::InstructionLimit {
                limit: self.max_instructions,
                retired: self.instructions,
            });
        }
        let pc = self.cpu.pc;
        let word = self.mem.fetch(pc)?;
        let word_idx = ((pc - self.text_base) / 4) as usize;
        self.pc_counts[word_idx] += 1;
        let insn = match self.decoded[word_idx] {
            Some((w, i)) if w == word => i,
            _ => {
                self.decode_rebuilds += 1;
                let i = Instruction::decode(word);
                self.decoded[word_idx] = Some((word, i));
                i
            }
        };
        if let Some(cache) = self.icache.as_mut() {
            if !cache.access(pc) {
                let penalty = u64::from(cache.penalty());
                self.advance_pipe(penalty);
            }
        }
        let p = match self.prepared[word_idx] {
            Some((w, p)) if w == word => p,
            _ => {
                self.prepare_rebuilds += 1;
                let p = self.model.prepare(&insn);
                self.prepared[word_idx] = Some((word, p));
                p
            }
        };
        // A single instruction is a one-element sequence through the
        // same memo (its key is the word's own content hash, so it
        // shares entries with one-instruction blocks). The I-cache
        // penalty was already charged above, in reference order. Text
        // is immutable during a run, so the per-word shortcut only
        // needs to match the context id.
        let entry_ctx = self.ctx;
        let hint = match self.step_last[word_idx] {
            (c, e) if e != NO_ENTRY && c == entry_ctx => e,
            _ => NO_ENTRY,
        };
        let key = if hint == NO_ENTRY {
            fnv1a64(&[word])
        } else {
            0
        };
        let entry = self.time_sequence(key, &[insn], &[p], hint, 0, 0);
        self.step_last[word_idx] = (entry_ctx, entry);
        if insn.is_mem() {
            self.mem_ops += 1;
        }
        let step = self.cpu.step_decoded(&mut self.mem, &insn)?;
        self.instructions += 1;
        match step {
            Step::Continue { taken_cti } => {
                if insn.control_kind() == ControlKind::CondBranch {
                    if let Some(pred) = self.predictor.as_mut() {
                        if pred.observe(pc, taken_cti) {
                            let penalty = u64::from(pred.penalty());
                            self.advance_pipe(penalty);
                        }
                    }
                }
                if taken_cti {
                    self.taken_branches += 1;
                    self.taken_counts[word_idx] += 1;
                    let penalty = self.taken_penalty;
                    self.advance_pipe(penalty);
                }
                Ok(None)
            }
            Step::Exit(code) => Ok(Some(code)),
        }
    }

    /// Executes one lowered straight-line op against architectural
    /// state. Does not touch pc/npc (`pc` is for fault payloads only);
    /// the generic fallback restores them around `step_decoded`.
    #[inline]
    fn exec_flat(&mut self, op: BlockOp, insn: &Instruction, pc: u32) -> Result<(), SimError> {
        match op {
            BlockOp::AluImm { op, rs1, imm, rd } => {
                let a = self.cpu.reg(rs1);
                let r = self.cpu.alu(op, a, imm, pc)?;
                self.cpu.set_reg(rd, r);
            }
            BlockOp::AluReg { op, rs1, rs2, rd } => {
                let a = self.cpu.reg(rs1);
                let b = self.cpu.reg(rs2);
                let r = self.cpu.alu(op, a, b, pc)?;
                self.cpu.set_reg(rd, r);
            }
            BlockOp::Sethi { value, rd } => self.cpu.set_reg(rd, value),
            BlockOp::LoadWordImm { base, off, rd } => {
                let ea = self.cpu.reg(base).wrapping_add(off);
                let v = self.mem.read_u32(ea)?;
                self.cpu.set_reg(rd, v);
            }
            BlockOp::StoreWordImm { src, base, off } => {
                let ea = self.cpu.reg(base).wrapping_add(off);
                let v = self.cpu.reg(src);
                self.mem.write_u32(ea, v)?;
            }
            BlockOp::Load {
                width,
                base,
                off,
                rd,
            } => {
                let ea = self.cpu.reg(base).wrapping_add(self.cpu.operand(off));
                self.cpu.do_load(&mut self.mem, width, ea, rd, pc)?;
            }
            BlockOp::Store {
                width,
                src,
                base,
                off,
            } => {
                let ea = self.cpu.reg(base).wrapping_add(self.cpu.operand(off));
                self.cpu.do_store(&mut self.mem, width, src, ea, pc)?;
            }
            BlockOp::LoadFp {
                double,
                base,
                off,
                rd,
            } => {
                let ea = self.cpu.reg(base).wrapping_add(self.cpu.operand(off));
                self.cpu.do_load_fp(&mut self.mem, double, ea, rd, pc)?;
            }
            BlockOp::StoreFp {
                double,
                src,
                base,
                off,
            } => {
                let ea = self.cpu.reg(base).wrapping_add(self.cpu.operand(off));
                self.cpu.do_store_fp(&mut self.mem, double, src, ea, pc)?;
            }
            BlockOp::Fp { op, rs1, rs2, rd } => self.cpu.fp_op(op, rs1, rs2, rd),
            BlockOp::FCmp { double, rs1, rs2 } => self.cpu.do_fcmp(double, rs1, rs2),
            BlockOp::Save { rs1, src2, rd } => {
                let v = self.cpu.reg(rs1).wrapping_add(self.cpu.operand(src2));
                self.cpu.do_save(v, rd);
            }
            BlockOp::Restore { rs1, src2, rd } => {
                let v = self.cpu.reg(rs1).wrapping_add(self.cpu.operand(src2));
                self.cpu.do_restore(v, rd, pc)?;
            }
            BlockOp::RdY { rd } => {
                let y = self.cpu.y;
                self.cpu.set_reg(rd, y);
            }
            BlockOp::WrY { rs1, src2 } => {
                self.cpu.y = self.cpu.reg(rs1) ^ self.cpu.operand(src2);
            }
            BlockOp::Other => {
                // Unreachable by construction (every straight-line
                // instruction lowers); kept as a correct generic
                // fallback.
                self.cpu.pc = pc;
                self.cpu.npc = pc.wrapping_add(4);
                let step = self.cpu.step_decoded(&mut self.mem, insn)?;
                debug_assert_eq!(
                    step,
                    Step::Continue { taken_cti: false },
                    "interior block ops are straight-line"
                );
            }
        }
        Ok(())
    }

    /// Executes one full pass over a built block: batched I-cache
    /// probes, memoized timing, flat functional replay, and exit-edge
    /// bookkeeping. The caller guarantees `cpu.pc` is the block's
    /// entry and `cpu.npc == pc + 4`.
    fn exec_block(&mut self, block: &mut Block) -> Result<Option<u32>, SimError> {
        let n = block.insns.len();
        let entry_pc = self.cpu.pc;

        // Batched fetch modeling: probe every word in one pass in
        // program order (identical hit/miss sequence and counts to
        // the reference) and record which instructions missed. The
        // hot case — no misses — replays the block's plain timing
        // entry; a miss pattern folds into the memo key and its walk
        // interleaves the penalties in reference order, so cycles are
        // exact either way.
        let mut missmask = 0u64;
        let mut miss_penalty = 0u64;
        if let Some(cache) = self.icache.as_mut() {
            if block.probe_gen == cache.generation() {
                // No fill since this block last probed all-hit: every
                // tag it touched is still resident, so a re-probe
                // would hit on each word and leave the tags untouched.
                cache.record_hits(n as u64);
            } else {
                // One real probe per line: the first block word
                // touching a line decides hit/miss (and fills on a
                // miss), so the line's remaining words always hit —
                // credit them without touching the tags. Identical
                // per-word hit/miss sequence to the reference.
                let line_words = (cache.line() / 4).max(1) as usize;
                let mut i = 0;
                while i < n {
                    let addr = entry_pc + 4 * i as u32;
                    let in_line = line_words - (addr / 4) as usize % line_words;
                    let span = in_line.min(n - i);
                    if !cache.access(addr) {
                        missmask |= 1u64 << i;
                    }
                    if span > 1 {
                        cache.record_hits(span as u64 - 1);
                    }
                    i += span;
                }
                miss_penalty = u64::from(cache.penalty());
                // After a full probe every word's line is resident, so
                // the skip is valid even past misses — unless the
                // block spans more (consecutive) lines than the cache
                // has sets, where a later line can evict an earlier
                // one mid-probe.
                let line = u64::from(cache.line());
                let first = u64::from(entry_pc) / line;
                let last = (u64::from(entry_pc) + 4 * n as u64 - 1) / line;
                block.probe_gen = if missmask == 0 || (last - first) < cache.sets() as u64 {
                    cache.generation()
                } else {
                    u64::MAX
                };
            }
        }
        let key = if missmask == 0 {
            block.content
        } else {
            chain(block.content, CTX_MISS, missmask)
        };

        // Memoized timing for the whole block.
        let entry_ctx = self.ctx;
        let way = (entry_ctx as usize) & (HINT_WAYS - 1);
        let hint = match block.hints[way] {
            (k, c, e) if k == key && c == entry_ctx => e,
            _ => NO_ENTRY,
        };
        let entry = self.time_sequence(
            key,
            &block.insns,
            &block.prepared,
            hint,
            missmask,
            miss_penalty,
        );
        block.hints[way] = (key, entry_ctx, entry);

        // Functional replay: flat dispatch over the lowered ops. The
        // interior is straight-line by construction, so pc/npc are not
        // maintained per op — an op's pc is recomputed only for fault
        // payloads, and the architectural pc is materialized once at
        // the terminator.
        for i in 0..n - 1 {
            let pc = entry_pc.wrapping_add(4 * i as u32);
            self.exec_flat(block.ops[i], &block.insns[i], pc)?;
        }
        let term_pc = entry_pc.wrapping_add(4 * (n as u32 - 1));
        let npc = term_pc.wrapping_add(4);
        // Specialized terminators: control flow through the shared
        // [`crate::cpu::branch_flow`] with the build-time absolute
        // target, skipping the generic interpreter. `jmpl`, traps, and
        // undecodable words stay generic (and exits only come from
        // there).
        let taken_cti = match block.term {
            TermOp::Branch {
                cond,
                annul,
                uncond,
                target,
            } => {
                let taken = self.cpu.cond(cond);
                let (p, np) = crate::cpu::branch_flow(npc, taken, annul, uncond, target);
                self.cpu.pc = p;
                self.cpu.npc = np;
                taken
            }
            TermOp::FBranch {
                cond,
                annul,
                uncond,
                target,
            } => {
                let taken = self.cpu.fcond(cond);
                let (p, np) = crate::cpu::branch_flow(npc, taken, annul, uncond, target);
                self.cpu.pc = p;
                self.cpu.npc = np;
                taken
            }
            TermOp::Call { target } => {
                self.cpu.set_reg(IntReg::O7, term_pc);
                self.cpu.pc = npc;
                self.cpu.npc = target;
                true
            }
            TermOp::Generic => {
                self.cpu.pc = term_pc;
                self.cpu.npc = npc;
                let step = self.cpu.step_decoded(&mut self.mem, &block.insns[n - 1])?;
                match step {
                    Step::Exit(code) => {
                        self.instructions += n as u64;
                        self.mem_ops += block.mem_ops;
                        block.execs += 1;
                        return Ok(Some(code));
                    }
                    Step::Continue { taken_cti } => taken_cti,
                }
            }
        };
        self.instructions += n as u64;
        self.mem_ops += block.mem_ops;
        block.execs += 1;
        if block.cond_branch {
            if let Some(pred) = self.predictor.as_mut() {
                if pred.observe(term_pc, taken_cti) {
                    let penalty = u64::from(pred.penalty());
                    self.advance_pipe(penalty);
                }
            }
        }
        if taken_cti {
            self.taken_branches += 1;
            self.taken_counts[block.start + n - 1] += 1;
            let penalty = self.taken_penalty;
            self.advance_pipe(penalty);
            // Fused delay slot: a taken transfer leaves `pc` at the
            // slot with a non-sequential `npc` — normally a trip
            // through the single-step path. With the slot precached,
            // execute it inline: the I-cache probe, memoized timing
            // (sharing single-step memo entries via the word content
            // key), and flat functional op happen in the exact order
            // the reference interleaves them. Skipped at the budget
            // boundary so the limit fault reports the exact count, and
            // when the transfer annulled the slot (`pc` is already the
            // target).
            if let Some(slot) = &mut block.slot {
                if self.cpu.pc == slot.addr && self.instructions < self.max_instructions {
                    let target = self.cpu.npc;
                    self.pc_counts[block.start + n] += 1;
                    if let Some(cache) = self.icache.as_mut() {
                        if slot.probe_gen == cache.generation() {
                            cache.record_hits(1);
                        } else if cache.access(slot.addr) {
                            slot.probe_gen = cache.generation();
                        } else {
                            slot.probe_gen = cache.generation();
                            let penalty = u64::from(cache.penalty());
                            self.advance_pipe(penalty);
                        }
                    }
                    let entry_ctx = self.ctx;
                    let way = (entry_ctx as usize) & (HINT_WAYS - 1);
                    let hint = match slot.hints[way] {
                        (k, c, e) if k == slot.content && c == entry_ctx => e,
                        _ => NO_ENTRY,
                    };
                    let insn = slot.insn;
                    let prepared = slot.prepared;
                    let entry = self.time_sequence(slot.content, &[insn], &[prepared], hint, 0, 0);
                    slot.hints[way] = (slot.content, entry_ctx, entry);
                    if slot.is_mem {
                        self.mem_ops += 1;
                    }
                    let (op, addr) = (slot.op, slot.addr);
                    self.exec_flat(op, &insn, addr)?;
                    self.instructions += 1;
                    self.fused += 1;
                    self.cpu.pc = target;
                    self.cpu.npc = target.wrapping_add(4);
                }
            }
        }
        Ok(None)
    }
}

/// Runs `exe` through the block-replay engine. The caller has already
/// established eligibility: a timed run with a model, no data cache,
/// and no stall attribution.
pub(crate) fn run_blocks<S: Sink>(
    exe: &Executable,
    model: &MachineModel,
    timing: &TimingConfig,
    config: &RunConfig,
    sink: &S,
) -> Result<RunResult, SimError> {
    let start = if S::ENABLED {
        Some(std::time::Instant::now())
    } else {
        None
    };
    // One span covering the whole simulated run. Per-event tracing of
    // block-cache *hits* would dominate the run (millions per run), so
    // hits/misses surface as one summary instant at the end instead —
    // only the rare build sites trace individually.
    let _run_trace = if S::TRACE_ENABLED {
        sink.trace_span("sim", "run", 0, 0)
    } else {
        None
    };
    debug_assert!(timing.dcache.is_none() && !config.attribute_stalls);
    let text_len = exe.text_len();
    let mem = Memory::load(exe);
    let mut eng = Engine {
        model,
        cpu: Cpu::new(exe.entry()),
        pipe: PipelineState::new(model),
        icache: timing.icache.map(ICache::new),
        predictor: timing.predictor.map(BranchPredictor::new),
        pc_counts: vec![0u64; text_len],
        taken_counts: vec![0u64; text_len],
        decoded: vec![None; text_len],
        prepared: vec![None; text_len],
        step_last: vec![(0, NO_ENTRY); text_len],
        memo: TimingMemo::default(),
        ctx: 0,
        pending: None,
        virt_cycle: 0,
        trail_advance: 0,
        #[cfg(debug_assertions)]
        key_scratch: Vec::new(),
        instructions: 0,
        taken_branches: 0,
        mem_ops: 0,
        last_complete: 0,
        builds: 0,
        fused: 0,
        decode_rebuilds: 0,
        prepare_rebuilds: 0,
        text_base: exe.text_base(),
        taken_penalty: u64::from(timing.taken_branch_penalty),
        max_instructions: config.max_instructions,
        mem,
    };
    let mut blocks: Vec<Option<Box<Block>>> = (0..text_len).map(|_| None).collect();

    let exit_code = loop {
        let pc = eng.cpu.pc;
        let word_idx = (pc.wrapping_sub(eng.text_base) / 4) as usize;
        // Delay slots (pending non-sequential npc), unaligned or
        // out-of-text pcs (which must fault exactly like the
        // reference), and the instruction-budget tail all
        // single-step.
        if eng.cpu.npc != pc.wrapping_add(4)
            || !pc.is_multiple_of(4)
            || pc < eng.text_base
            || word_idx >= text_len
        {
            if let Some(code) = eng.step_one()? {
                break code;
            }
            continue;
        }
        if blocks[word_idx].is_none() {
            let block = Box::new(build_block(
                &eng.mem,
                eng.text_base,
                text_len,
                word_idx,
                eng.model,
            ));
            if S::TRACE_ENABLED {
                sink.trace_instant(
                    "sim",
                    "block_build",
                    word_idx as u64,
                    block.insns.len() as u64,
                );
            }
            blocks[word_idx] = Some(block);
            eng.builds += 1;
        }
        let block = blocks[word_idx].as_deref_mut().expect("just built");
        if eng.instructions + block.insns.len() as u64 > eng.max_instructions {
            // Near the budget: step so a limit fault reports the
            // exact retired count.
            if let Some(code) = eng.step_one()? {
                break code;
            }
            continue;
        }
        if let Some(code) = eng.exec_block(block)? {
            break code;
        }
    };

    // Expand per-block execution counts into the per-word profile.
    for block in blocks.iter().flatten() {
        if block.execs > 0 {
            for (i, c) in eng.pc_counts[block.start..block.start + block.insns.len()]
                .iter_mut()
                .enumerate()
            {
                let _ = i;
                *c += block.execs;
            }
        }
    }

    let cycles = eng.last_complete + 1;
    if S::ENABLED {
        sink.add("sim.runs", 1);
        sink.add("sim.instructions", eng.instructions);
        sink.add("sim.cycles", cycles);
        sink.add("sim.mem_ops", eng.mem_ops);
        sink.add("sim.taken_branches", eng.taken_branches);
        sink.add("sim.decode_rebuilds", eng.decode_rebuilds);
        sink.add("sim.prepare_rebuilds", eng.prepare_rebuilds);
        sink.add("sim.block_builds", eng.builds);
        sink.add("sim.block_slot_fused", eng.fused);
        sink.add("sim.block_ctx_hits", eng.memo.hits);
        sink.add("sim.block_ctx_misses", eng.memo.misses);
        sink.record("sim.run_cycles", cycles);
        if let Some(t0) = start {
            sink.record("sim.run_ns", t0.elapsed().as_nanos() as u64);
        }
    }
    if S::TRACE_ENABLED {
        // Summaries for the too-hot-to-trace paths: context-memo
        // hit/miss totals (misses ≈ materialized timing walks) and
        // build/fuse totals for the block cache itself.
        sink.trace_instant("sim", "block_cache", eng.memo.hits, eng.memo.misses);
        sink.trace_instant("sim", "block_totals", eng.builds, eng.fused);
    }
    Ok(RunResult {
        instructions: eng.instructions,
        cycles,
        exit_code,
        pc_counts: eng.pc_counts,
        icache_misses: eng.icache.map(|c| c.misses()).unwrap_or(0),
        dcache_misses: 0,
        mispredicts: eng.predictor.map(|p| p.mispredicts()).unwrap_or(0),
        taken_branches: eng.taken_branches,
        mem_ops: eng.mem_ops,
        taken_counts: eng.taken_counts,
        memory: eng.mem,
        stall_profile: None,
    })
}
