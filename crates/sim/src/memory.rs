//! Simulated memory: the executable's text and data segments plus
//! demand-allocated pages for the stack and heap.

use std::collections::HashMap;

use eel_edit::Executable;

use crate::error::SimError;

const PAGE_SHIFT: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;

/// Byte-addressed simulated memory (big-endian, as SPARC is).
///
/// Text is read-only; the data segment (including bss) is backed
/// directly; any other address falls into demand-zeroed pages.
#[derive(Debug, Clone)]
pub struct Memory {
    text_base: u32,
    text: Vec<u32>,
    data_base: u32,
    data: Vec<u8>,
    pages: HashMap<u32, Box<[u8; PAGE_SIZE]>>,
}

impl Memory {
    /// Loads an executable image.
    pub fn load(exe: &Executable) -> Memory {
        let mut data = exe.data().to_vec();
        data.resize(data.len() + exe.bss_size() as usize, 0);
        Memory {
            text_base: exe.text_base(),
            text: exe.text().to_vec(),
            data_base: exe.data_base(),
            data,
            pages: HashMap::new(),
        }
    }

    fn text_end(&self) -> u32 {
        self.text_base + 4 * self.text.len() as u32
    }

    fn data_end(&self) -> u32 {
        self.data_base + self.data.len() as u32
    }

    /// Fetches the instruction word at `addr`.
    ///
    /// # Errors
    ///
    /// [`SimError::BadPc`] outside the text segment or unaligned.
    pub fn fetch(&self, addr: u32) -> Result<u32, SimError> {
        if !addr.is_multiple_of(4) || addr < self.text_base || addr >= self.text_end() {
            return Err(SimError::BadPc { pc: addr });
        }
        Ok(self.text[((addr - self.text_base) / 4) as usize])
    }

    fn page(&mut self, addr: u32) -> (&mut [u8; PAGE_SIZE], usize) {
        let key = addr >> PAGE_SHIFT;
        let page = self
            .pages
            .entry(key)
            .or_insert_with(|| Box::new([0; PAGE_SIZE]));
        (page, (addr as usize) & (PAGE_SIZE - 1))
    }

    /// Reads one byte.
    pub fn read_u8(&mut self, addr: u32) -> Result<u8, SimError> {
        if addr >= self.data_base && addr < self.data_end() {
            return Ok(self.data[(addr - self.data_base) as usize]);
        }
        if addr >= self.text_base && addr < self.text_end() {
            let w = self.text[((addr - self.text_base) / 4) as usize];
            return Ok((w >> (8 * (3 - (addr % 4)))) as u8);
        }
        let (page, off) = self.page(addr);
        Ok(page[off])
    }

    /// Writes one byte.
    ///
    /// # Errors
    ///
    /// [`SimError::TextWrite`] when targeting the text segment.
    pub fn write_u8(&mut self, addr: u32, value: u8) -> Result<(), SimError> {
        if addr >= self.text_base && addr < self.text_end() {
            return Err(SimError::TextWrite { addr });
        }
        if addr >= self.data_base && addr < self.data_end() {
            self.data[(addr - self.data_base) as usize] = value;
            return Ok(());
        }
        let (page, off) = self.page(addr);
        page[off] = value;
        Ok(())
    }

    /// Reads a 16-bit halfword (must be 2-aligned).
    pub fn read_u16(&mut self, addr: u32) -> Result<u16, SimError> {
        if !addr.is_multiple_of(2) {
            return Err(SimError::Unaligned { addr, size: 2 });
        }
        Ok(u16::from(self.read_u8(addr)?) << 8 | u16::from(self.read_u8(addr + 1)?))
    }

    /// Writes a 16-bit halfword (must be 2-aligned).
    pub fn write_u16(&mut self, addr: u32, value: u16) -> Result<(), SimError> {
        if !addr.is_multiple_of(2) {
            return Err(SimError::Unaligned { addr, size: 2 });
        }
        self.write_u8(addr, (value >> 8) as u8)?;
        self.write_u8(addr + 1, value as u8)
    }

    /// Reads a 32-bit word (must be 4-aligned).
    pub fn read_u32(&mut self, addr: u32) -> Result<u32, SimError> {
        if !addr.is_multiple_of(4) {
            return Err(SimError::Unaligned { addr, size: 4 });
        }
        // Fast path: word-aligned data-segment access.
        if addr >= self.data_base && addr + 4 <= self.data_end() {
            let i = (addr - self.data_base) as usize;
            return Ok(u32::from_be_bytes(
                self.data[i..i + 4].try_into().expect("4 bytes"),
            ));
        }
        let mut v = 0u32;
        for k in 0..4 {
            v = v << 8 | u32::from(self.read_u8(addr + k)?);
        }
        Ok(v)
    }

    /// Writes a 32-bit word (must be 4-aligned).
    pub fn write_u32(&mut self, addr: u32, value: u32) -> Result<(), SimError> {
        if !addr.is_multiple_of(4) {
            return Err(SimError::Unaligned { addr, size: 4 });
        }
        if addr >= self.data_base && addr + 4 <= self.data_end() {
            let i = (addr - self.data_base) as usize;
            self.data[i..i + 4].copy_from_slice(&value.to_be_bytes());
            return Ok(());
        }
        for k in 0..4 {
            self.write_u8(addr + k, (value >> (8 * (3 - k))) as u8)?;
        }
        Ok(())
    }

    /// Reads a 64-bit doubleword (must be 8-aligned).
    pub fn read_u64(&mut self, addr: u32) -> Result<u64, SimError> {
        if !addr.is_multiple_of(8) {
            return Err(SimError::Unaligned { addr, size: 8 });
        }
        Ok(u64::from(self.read_u32(addr)?) << 32 | u64::from(self.read_u32(addr + 4)?))
    }

    /// Writes a 64-bit doubleword (must be 8-aligned).
    pub fn write_u64(&mut self, addr: u32, value: u64) -> Result<(), SimError> {
        if !addr.is_multiple_of(8) {
            return Err(SimError::Unaligned { addr, size: 8 });
        }
        self.write_u32(addr, (value >> 32) as u32)?;
        self.write_u32(addr + 4, value as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eel_sparc::Instruction;

    fn mem() -> Memory {
        let exe = Executable::new(
            0x10000,
            vec![Instruction::nop().encode(); 2],
            0x80_0000,
            vec![0xAA, 0xBB, 0xCC, 0xDD],
            8,
            0x10000,
            vec![eel_edit::Symbol {
                name: "main".into(),
                addr: 0x10000,
            }],
        );
        Memory::load(&exe)
    }

    #[test]
    fn fetch_text() {
        let m = mem();
        assert_eq!(m.fetch(0x10000).unwrap(), Instruction::nop().encode());
        assert!(matches!(m.fetch(0x10008), Err(SimError::BadPc { .. })));
        assert!(matches!(m.fetch(0x10002), Err(SimError::BadPc { .. })));
    }

    #[test]
    fn data_reads_are_big_endian() {
        let mut m = mem();
        assert_eq!(m.read_u32(0x80_0000).unwrap(), 0xAABB_CCDD);
        assert_eq!(m.read_u8(0x80_0001).unwrap(), 0xBB);
        assert_eq!(m.read_u16(0x80_0002).unwrap(), 0xCCDD);
    }

    #[test]
    fn bss_reads_zero_and_is_writable() {
        let mut m = mem();
        assert_eq!(m.read_u32(0x80_0004).unwrap(), 0);
        m.write_u32(0x80_0004, 7).unwrap();
        assert_eq!(m.read_u32(0x80_0004).unwrap(), 7);
    }

    #[test]
    fn stack_pages_demand_allocate() {
        let mut m = mem();
        let sp = 0x7FFF_FF00;
        assert_eq!(m.read_u32(sp).unwrap(), 0);
        m.write_u32(sp, 0x1234_5678).unwrap();
        assert_eq!(m.read_u32(sp).unwrap(), 0x1234_5678);
        assert_eq!(m.read_u8(sp + 3).unwrap(), 0x78);
    }

    #[test]
    fn text_is_readable_as_data_but_not_writable() {
        let mut m = mem();
        assert_eq!(m.read_u32(0x10000).unwrap(), Instruction::nop().encode());
        assert!(matches!(
            m.write_u32(0x10000, 0),
            Err(SimError::TextWrite { .. })
        ));
    }

    #[test]
    fn alignment_enforced() {
        let mut m = mem();
        assert!(matches!(
            m.read_u32(0x80_0002),
            Err(SimError::Unaligned { .. })
        ));
        assert!(matches!(
            m.read_u16(0x80_0001),
            Err(SimError::Unaligned { .. })
        ));
        assert!(matches!(
            m.read_u64(0x80_0004),
            Err(SimError::Unaligned { .. })
        ));
    }

    #[test]
    fn u64_roundtrip() {
        let mut m = mem();
        m.write_u64(0x7000_0000, 0x0102_0304_0506_0708).unwrap();
        assert_eq!(m.read_u64(0x7000_0000).unwrap(), 0x0102_0304_0506_0708);
        assert_eq!(m.read_u32(0x7000_0004).unwrap(), 0x0506_0708);
    }
}
