//! The functional SPARC V8 interpreter: architectural state and the
//! `step` function, with proper delay-slot and annul semantics.

use eel_sparc::{Address, AluOp, Cond, FCond, FpOp, Instruction, IntReg, MemWidth, Operand};

use crate::error::SimError;
use crate::memory::Memory;

/// Integer condition codes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Icc {
    /// Negative.
    pub n: bool,
    /// Zero.
    pub z: bool,
    /// Overflow.
    pub v: bool,
    /// Carry.
    pub c: bool,
}

/// Floating-point condition code (a 2-valued comparison outcome).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Fcc {
    /// Operands compared equal.
    #[default]
    Equal,
    /// First operand less.
    Less,
    /// First operand greater.
    Greater,
    /// Unordered (a NaN was involved).
    Unordered,
}

/// What a single step did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// Execution continues; `taken_cti` reports whether this
    /// instruction was a taken control transfer (for branch-penalty
    /// accounting in the timing engine).
    Continue {
        /// Whether a control transfer was taken.
        taken_cti: bool,
    },
    /// The program exited via `ta 0`; the value is `%o0`.
    Exit(u32),
}

/// The architectural state of the simulated processor.
///
/// Register windows grow on demand (no overflow traps — the window
/// file is as deep as the call stack needs), which is equivalent to a
/// machine whose window spills are free. `restore` past the first
/// window is an error.
#[derive(Debug, Clone)]
pub struct Cpu {
    /// Current program counter.
    pub pc: u32,
    /// Next program counter (delay-slot machinery).
    pub npc: u32,
    globals: [u32; 8],
    /// `windows[w]`: locals in `[0..8]`, ins in `[8..16]`. The outs of
    /// window `w` are the ins of window `w + 1`.
    windows: Vec<[u32; 16]>,
    cwp: usize,
    f: [u32; 32],
    /// Integer condition codes.
    pub icc: Icc,
    /// Floating-point condition code.
    pub fcc: Fcc,
    /// The Y register.
    pub y: u32,
}

/// Initial stack pointer for simulated programs.
pub const STACK_TOP: u32 = 0x7FFF_FF00;

impl Cpu {
    /// A CPU about to execute its first instruction at `entry`.
    pub fn new(entry: u32) -> Cpu {
        let mut cpu = Cpu {
            pc: entry,
            npc: entry.wrapping_add(4),
            globals: [0; 8],
            windows: vec![[0; 16]; 2],
            cwp: 0,
            f: [0; 32],
            icc: Icc::default(),
            fcc: Fcc::default(),
            y: 0,
        };
        cpu.set_reg(IntReg::SP, STACK_TOP);
        cpu.set_reg(IntReg::FP, STACK_TOP);
        cpu
    }

    fn ensure_window(&mut self, w: usize) {
        while self.windows.len() <= w {
            self.windows.push([0; 16]);
        }
    }

    /// Reads an integer register in the current window.
    pub fn reg(&self, r: IntReg) -> u32 {
        let n = r.number() as usize;
        match n {
            0 => 0,
            1..=7 => self.globals[n],
            8..=15 => self
                .windows
                .get(self.cwp + 1)
                .map(|w| w[8 + (n - 8)])
                .unwrap_or(0),
            16..=23 => self.windows[self.cwp][n - 16],
            _ => self.windows[self.cwp][8 + (n - 24)],
        }
    }

    /// Writes an integer register in the current window (writes to
    /// `%g0` are discarded).
    pub fn set_reg(&mut self, r: IntReg, value: u32) {
        let n = r.number() as usize;
        match n {
            0 => {}
            1..=7 => self.globals[n] = value,
            8..=15 => {
                self.ensure_window(self.cwp + 1);
                self.windows[self.cwp + 1][8 + (n - 8)] = value;
            }
            16..=23 => self.windows[self.cwp][n - 16] = value,
            _ => self.windows[self.cwp][8 + (n - 24)] = value,
        }
    }

    /// Reads a raw single-precision FP register.
    pub fn freg(&self, r: eel_sparc::FpReg) -> u32 {
        self.f[r.number() as usize]
    }

    /// Writes a raw single-precision FP register.
    pub fn set_freg(&mut self, r: eel_sparc::FpReg, bits: u32) {
        self.f[r.number() as usize] = bits;
    }

    fn fdouble(&self, r: eel_sparc::FpReg) -> f64 {
        let (e, o) = r.pair();
        let bits =
            u64::from(self.f[e.number() as usize]) << 32 | u64::from(self.f[o.number() as usize]);
        f64::from_bits(bits)
    }

    fn set_fdouble(&mut self, r: eel_sparc::FpReg, v: f64) {
        let (e, o) = r.pair();
        let bits = v.to_bits();
        self.f[e.number() as usize] = (bits >> 32) as u32;
        self.f[o.number() as usize] = bits as u32;
    }

    fn fsingle(&self, r: eel_sparc::FpReg) -> f32 {
        f32::from_bits(self.f[r.number() as usize])
    }

    fn set_fsingle(&mut self, r: eel_sparc::FpReg, v: f32) {
        self.f[r.number() as usize] = v.to_bits();
    }

    pub(crate) fn operand(&self, o: Operand) -> u32 {
        match o {
            Operand::Reg(r) => self.reg(r),
            Operand::Imm(v) => v as i32 as u32,
        }
    }

    pub(crate) fn ea(&self, a: Address) -> u32 {
        self.reg(a.base).wrapping_add(self.operand(a.offset))
    }

    /// Evaluates an integer branch condition against the current ICC.
    pub fn cond(&self, c: Cond) -> bool {
        let Icc { n, z, v, c: carry } = self.icc;
        match c {
            Cond::A => true,
            Cond::N => false,
            Cond::E => z,
            Cond::Ne => !z,
            Cond::G => !(z | (n ^ v)),
            Cond::Le => z | (n ^ v),
            Cond::Ge => !(n ^ v),
            Cond::L => n ^ v,
            Cond::Gu => !(carry | z),
            Cond::Leu => carry | z,
            Cond::Cc => !carry,
            Cond::Cs => carry,
            Cond::Pos => !n,
            Cond::Neg => n,
            Cond::Vc => !v,
            Cond::Vs => v,
        }
    }

    /// Evaluates a floating-point branch condition against the FCC.
    pub fn fcond(&self, c: FCond) -> bool {
        let (e, l, g, u) = (
            self.fcc == Fcc::Equal,
            self.fcc == Fcc::Less,
            self.fcc == Fcc::Greater,
            self.fcc == Fcc::Unordered,
        );
        match c {
            FCond::A => true,
            FCond::N => false,
            FCond::U => u,
            FCond::G => g,
            FCond::Ug => u | g,
            FCond::L => l,
            FCond::Ul => u | l,
            FCond::Lg => l | g,
            FCond::Ne => l | g | u,
            FCond::E => e,
            FCond::Ue => u | e,
            FCond::Ge => g | e,
            FCond::Uge => u | g | e,
            FCond::Le => l | e,
            FCond::Ule => u | l | e,
            FCond::O => e | l | g,
        }
    }

    pub(crate) fn alu(&mut self, op: AluOp, a: u32, b: u32, pc: u32) -> Result<u32, SimError> {
        use AluOp::*;
        let carry_in = u32::from(self.icc.c);
        let (result, new_cc): (u32, Option<Icc>) = match op {
            Add | AddCc => {
                let (r, c1) = a.overflowing_add(b);
                let v = (!(a ^ b) & (a ^ r)) >> 31 != 0;
                (
                    r,
                    Some(Icc {
                        n: (r as i32) < 0,
                        z: r == 0,
                        v,
                        c: c1,
                    }),
                )
            }
            AddX | AddXCc => {
                let (r1, c1) = a.overflowing_add(b);
                let (r, c2) = r1.overflowing_add(carry_in);
                let v = (!(a ^ b) & (a ^ r)) >> 31 != 0;
                (
                    r,
                    Some(Icc {
                        n: (r as i32) < 0,
                        z: r == 0,
                        v,
                        c: c1 || c2,
                    }),
                )
            }
            Sub | SubCc => {
                let (r, borrow) = a.overflowing_sub(b);
                let v = ((a ^ b) & (a ^ r)) >> 31 != 0;
                (
                    r,
                    Some(Icc {
                        n: (r as i32) < 0,
                        z: r == 0,
                        v,
                        c: borrow,
                    }),
                )
            }
            SubX | SubXCc => {
                let (r1, b1) = a.overflowing_sub(b);
                let (r, b2) = r1.overflowing_sub(carry_in);
                let v = ((a ^ b) & (a ^ r)) >> 31 != 0;
                (
                    r,
                    Some(Icc {
                        n: (r as i32) < 0,
                        z: r == 0,
                        v,
                        c: b1 || b2,
                    }),
                )
            }
            And | AndCc => logic(a & b),
            AndN | AndNCc => logic(a & !b),
            Or | OrCc => logic(a | b),
            OrN | OrNCc => logic(a | !b),
            Xor | XorCc => logic(a ^ b),
            XNor | XNorCc => logic(!(a ^ b)),
            Sll => (a << (b & 31), None),
            Srl => (a >> (b & 31), None),
            Sra => (((a as i32) >> (b & 31)) as u32, None),
            UMul | UMulCc => {
                let p = u64::from(a) * u64::from(b);
                self.y = (p >> 32) as u32;
                let r = p as u32;
                (
                    r,
                    Some(Icc {
                        n: (r as i32) < 0,
                        z: r == 0,
                        v: false,
                        c: false,
                    }),
                )
            }
            SMul | SMulCc => {
                let p = i64::from(a as i32) * i64::from(b as i32);
                self.y = ((p as u64) >> 32) as u32;
                let r = p as u32;
                (
                    r,
                    Some(Icc {
                        n: (r as i32) < 0,
                        z: r == 0,
                        v: false,
                        c: false,
                    }),
                )
            }
            UDiv | UDivCc => {
                if b == 0 {
                    return Err(SimError::DivisionByZero { pc });
                }
                let dividend = u64::from(self.y) << 32 | u64::from(a);
                let q = dividend / u64::from(b);
                let r = u32::try_from(q).unwrap_or(u32::MAX); // overflow clamps
                (
                    r,
                    Some(Icc {
                        n: (r as i32) < 0,
                        z: r == 0,
                        v: q > u64::from(u32::MAX),
                        c: false,
                    }),
                )
            }
            SDiv | SDivCc => {
                if b == 0 {
                    return Err(SimError::DivisionByZero { pc });
                }
                let dividend = ((u64::from(self.y) << 32 | u64::from(a)) as i64) as i128;
                let q = dividend / i128::from(b as i32);
                let clamped = q.clamp(i128::from(i32::MIN), i128::from(i32::MAX));
                let r = clamped as i32 as u32;
                (
                    r,
                    Some(Icc {
                        n: (r as i32) < 0,
                        z: r == 0,
                        v: q != clamped,
                        c: false,
                    }),
                )
            }
        };
        if op.sets_cc() {
            if let Some(cc) = new_cc {
                self.icc = cc;
            }
        }
        Ok(result)
    }

    /// Steps until the program exits via `ta 0`, returning its exit
    /// code, or until `fuel` instructions have retired.
    ///
    /// # Errors
    ///
    /// Propagates any [`SimError`] fault from [`Cpu::step`]. A program
    /// still running after `fuel` retired instructions faults with
    /// [`SimError::InstructionLimit`] carrying the retired count, so
    /// callers can tell a runaway loop from a program that was merely
    /// close to its budget.
    pub fn run_to_exit(&mut self, mem: &mut Memory, fuel: u64) -> Result<u32, SimError> {
        let mut retired = 0u64;
        while retired < fuel {
            match self.step(mem)? {
                Step::Continue { .. } => retired += 1,
                Step::Exit(code) => return Ok(code),
            }
        }
        Err(SimError::InstructionLimit {
            limit: fuel,
            retired,
        })
    }

    /// Executes one instruction. Returns whether to continue and
    /// whether a control transfer was taken.
    ///
    /// # Errors
    ///
    /// Faults with a [`SimError`] on illegal instructions, bad memory
    /// accesses, division by zero, window underflow, or unhandled
    /// traps.
    pub fn step(&mut self, mem: &mut Memory) -> Result<Step, SimError> {
        let word = mem.fetch(self.pc)?;
        let insn = Instruction::decode(word);
        self.step_decoded(mem, &insn)
    }

    /// [`Cpu::step`] for an already-decoded instruction: the caller
    /// guarantees `insn` is the decoding of the word at `self.pc`.
    /// The block replay loop in [`crate::run`] uses this to execute
    /// cached blocks without re-fetching and re-decoding every
    /// dynamic instruction.
    ///
    /// # Errors
    ///
    /// As [`Cpu::step`].
    pub fn step_decoded(&mut self, mem: &mut Memory, insn: &Instruction) -> Result<Step, SimError> {
        let pc = self.pc;
        let insn = *insn;

        // Default sequential flow.
        let mut next_pc = self.npc;
        let mut next_npc = self.npc.wrapping_add(4);
        let mut taken_cti = false;

        match insn {
            Instruction::Sethi { imm22, rd } => self.set_reg(rd, imm22 << 10),
            Instruction::Alu { op, rs1, src2, rd } => {
                let a = self.reg(rs1);
                let b = self.operand(src2);
                let r = self.alu(op, a, b, pc)?;
                self.set_reg(rd, r);
            }
            Instruction::Load { width, addr, rd } => {
                let ea = self.ea(addr);
                self.do_load(mem, width, ea, rd, pc)?;
            }
            Instruction::Store { width, src, addr } => {
                let ea = self.ea(addr);
                self.do_store(mem, width, src, ea, pc)?;
            }
            Instruction::LoadFp { double, addr, rd } => {
                let ea = self.ea(addr);
                self.do_load_fp(mem, double, ea, rd, pc)?;
            }
            Instruction::StoreFp { double, src, addr } => {
                let ea = self.ea(addr);
                self.do_store_fp(mem, double, src, ea, pc)?;
            }
            Instruction::Branch { cond, annul, disp } => {
                let taken = self.cond(cond);
                taken_cti = taken;
                let target = pc.wrapping_add((disp as i64 * 4) as u32);
                (next_pc, next_npc) = branch_flow(self.npc, taken, annul, cond == Cond::A, target);
            }
            Instruction::FBranch { cond, annul, disp } => {
                let taken = self.fcond(cond);
                taken_cti = taken;
                let target = pc.wrapping_add((disp as i64 * 4) as u32);
                (next_pc, next_npc) = branch_flow(self.npc, taken, annul, cond == FCond::A, target);
            }
            Instruction::Call { disp } => {
                self.set_reg(IntReg::O7, pc);
                next_npc = pc.wrapping_add((disp as i64 * 4) as u32);
                taken_cti = true;
            }
            Instruction::Jmpl { rs1, src2, rd } => {
                let target = self.reg(rs1).wrapping_add(self.operand(src2));
                if !target.is_multiple_of(4) {
                    return Err(SimError::BadPc { pc: target });
                }
                self.set_reg(rd, pc);
                next_npc = target;
                taken_cti = true;
            }
            Instruction::Save { rs1, src2, rd } => {
                let v = self.reg(rs1).wrapping_add(self.operand(src2));
                self.do_save(v, rd);
            }
            Instruction::Restore { rs1, src2, rd } => {
                let v = self.reg(rs1).wrapping_add(self.operand(src2));
                self.do_restore(v, rd, pc)?;
            }
            Instruction::Fp { op, rs1, rs2, rd } => self.fp_op(op, rs1, rs2, rd),
            Instruction::FCmp { double, rs1, rs2 } => self.do_fcmp(double, rs1, rs2),
            Instruction::RdY { rd } => self.set_reg(rd, self.y),
            Instruction::WrY { rs1, src2 } => {
                self.y = self.reg(rs1) ^ self.operand(src2);
            }
            Instruction::Trap { cond, rs1, src2 } => {
                if self.cond(cond) {
                    let number = self.reg(rs1).wrapping_add(self.operand(src2)) & 0x7F;
                    match number {
                        0 => return Ok(Step::Exit(self.reg(IntReg::O0))),
                        // Trap 1 is a no-op "output" hook.
                        1 => {}
                        n => return Err(SimError::UnhandledTrap { pc, number: n }),
                    }
                }
            }
            Instruction::Unknown(w) => return Err(SimError::IllegalInstruction { pc, word: w }),
        }

        self.pc = next_pc;
        self.npc = next_npc;
        Ok(Step::Continue { taken_cti })
    }

    /// Integer load at a resolved effective address. Shared between
    /// [`Cpu::step_decoded`] and the block replay loop's flat ops so
    /// width and fault semantics live in one place; `pc` is only for
    /// fault payloads.
    pub(crate) fn do_load(
        &mut self,
        mem: &mut Memory,
        width: MemWidth,
        ea: u32,
        rd: IntReg,
        pc: u32,
    ) -> Result<(), SimError> {
        match width {
            MemWidth::UByte => {
                let v = mem.read_u8(ea)?;
                self.set_reg(rd, u32::from(v));
            }
            MemWidth::SByte => {
                let v = mem.read_u8(ea)? as i8;
                self.set_reg(rd, v as i32 as u32);
            }
            MemWidth::UHalf => {
                let v = mem.read_u16(ea)?;
                self.set_reg(rd, u32::from(v));
            }
            MemWidth::SHalf => {
                let v = mem.read_u16(ea)? as i16;
                self.set_reg(rd, v as i32 as u32);
            }
            MemWidth::Word => {
                let v = mem.read_u32(ea)?;
                self.set_reg(rd, v);
            }
            MemWidth::Double => {
                if !rd.number().is_multiple_of(2) {
                    return Err(SimError::OddRegisterPair { pc });
                }
                let v = mem.read_u64(ea)?;
                self.set_reg(rd, (v >> 32) as u32);
                self.set_reg(IntReg::new(rd.number() + 1), v as u32);
            }
        }
        Ok(())
    }

    /// Integer store at a resolved effective address (see
    /// [`Cpu::do_load`]).
    pub(crate) fn do_store(
        &mut self,
        mem: &mut Memory,
        width: MemWidth,
        src: IntReg,
        ea: u32,
        pc: u32,
    ) -> Result<(), SimError> {
        let v = self.reg(src);
        match width {
            MemWidth::UByte | MemWidth::SByte => mem.write_u8(ea, v as u8)?,
            MemWidth::UHalf | MemWidth::SHalf => mem.write_u16(ea, v as u16)?,
            MemWidth::Word => mem.write_u32(ea, v)?,
            MemWidth::Double => {
                if !src.number().is_multiple_of(2) {
                    return Err(SimError::OddRegisterPair { pc });
                }
                let lo = self.reg(IntReg::new(src.number() + 1));
                mem.write_u64(ea, u64::from(v) << 32 | u64::from(lo))?;
            }
        }
        Ok(())
    }

    /// FP load at a resolved effective address (see [`Cpu::do_load`]).
    pub(crate) fn do_load_fp(
        &mut self,
        mem: &mut Memory,
        double: bool,
        ea: u32,
        rd: eel_sparc::FpReg,
        pc: u32,
    ) -> Result<(), SimError> {
        if double {
            if !rd.number().is_multiple_of(2) {
                return Err(SimError::OddRegisterPair { pc });
            }
            let v = mem.read_u64(ea)?;
            let (e, o) = rd.pair();
            self.set_freg(e, (v >> 32) as u32);
            self.set_freg(o, v as u32);
        } else {
            let v = mem.read_u32(ea)?;
            self.set_freg(rd, v);
        }
        Ok(())
    }

    /// FP store at a resolved effective address (see [`Cpu::do_load`]).
    pub(crate) fn do_store_fp(
        &mut self,
        mem: &mut Memory,
        double: bool,
        src: eel_sparc::FpReg,
        ea: u32,
        pc: u32,
    ) -> Result<(), SimError> {
        if double {
            if !src.number().is_multiple_of(2) {
                return Err(SimError::OddRegisterPair { pc });
            }
            let (e, o) = src.pair();
            let v = u64::from(self.freg(e)) << 32 | u64::from(self.freg(o));
            mem.write_u64(ea, v)?;
        } else {
            mem.write_u32(ea, self.freg(src))?;
        }
        Ok(())
    }

    /// `save` with the add result `v` already computed against the
    /// *old* window.
    pub(crate) fn do_save(&mut self, v: u32, rd: IntReg) {
        self.cwp += 1;
        self.ensure_window(self.cwp + 1);
        self.set_reg(rd, v);
    }

    /// `restore` with the add result `v` already computed against the
    /// *old* window.
    pub(crate) fn do_restore(&mut self, v: u32, rd: IntReg, pc: u32) -> Result<(), SimError> {
        if self.cwp == 0 {
            return Err(SimError::WindowUnderflow { pc });
        }
        self.cwp -= 1;
        self.set_reg(rd, v);
        Ok(())
    }

    /// `fcmps`/`fcmpd`.
    pub(crate) fn do_fcmp(&mut self, double: bool, rs1: eel_sparc::FpReg, rs2: eel_sparc::FpReg) {
        self.fcc = if double {
            compare(self.fdouble(rs1), self.fdouble(rs2))
        } else {
            compare(f64::from(self.fsingle(rs1)), f64::from(self.fsingle(rs2)))
        };
    }

    pub(crate) fn fp_op(
        &mut self,
        op: FpOp,
        rs1: eel_sparc::FpReg,
        rs2: eel_sparc::FpReg,
        rd: eel_sparc::FpReg,
    ) {
        use FpOp::*;
        match op {
            FMovS => self.set_freg(rd, self.freg(rs2)),
            FNegS => self.set_freg(rd, self.freg(rs2) ^ 0x8000_0000),
            FAbsS => self.set_freg(rd, self.freg(rs2) & 0x7FFF_FFFF),
            FAddS => self.set_fsingle(rd, self.fsingle(rs1) + self.fsingle(rs2)),
            FSubS => self.set_fsingle(rd, self.fsingle(rs1) - self.fsingle(rs2)),
            FMulS => self.set_fsingle(rd, self.fsingle(rs1) * self.fsingle(rs2)),
            FDivS => self.set_fsingle(rd, self.fsingle(rs1) / self.fsingle(rs2)),
            FSqrtS => self.set_fsingle(rd, self.fsingle(rs2).sqrt()),
            FAddD => self.set_fdouble(rd, self.fdouble(rs1) + self.fdouble(rs2)),
            FSubD => self.set_fdouble(rd, self.fdouble(rs1) - self.fdouble(rs2)),
            FMulD => self.set_fdouble(rd, self.fdouble(rs1) * self.fdouble(rs2)),
            FDivD => self.set_fdouble(rd, self.fdouble(rs1) / self.fdouble(rs2)),
            FSqrtD => self.set_fdouble(rd, self.fdouble(rs2).sqrt()),
            FiToS => self.set_fsingle(rd, self.freg(rs2) as i32 as f32),
            FiToD => self.set_fdouble(rd, f64::from(self.freg(rs2) as i32)),
            FsToI => {
                let v = self.fsingle(rs2);
                self.set_freg(rd, clamp_to_i32(f64::from(v)) as u32);
            }
            FdToI => {
                let v = self.fdouble(rs2);
                self.set_freg(rd, clamp_to_i32(v) as u32);
            }
            FsToD => self.set_fdouble(rd, f64::from(self.fsingle(rs2))),
            FdToS => self.set_fsingle(rd, self.fdouble(rs2) as f32),
        }
    }
}

/// Delay-slot flow for a (possibly annulling) branch at the
/// instruction whose delayed pc is `npc`: returns `(next_pc,
/// next_npc)`. `uncond` marks the always-taken condition (`ba`/`fba`),
/// whose annulled form skips the delay slot even when taken. Shared by
/// [`Cpu::step_decoded`] and the block replay loop's specialized
/// branch terminators.
pub(crate) fn branch_flow(
    npc: u32,
    taken: bool,
    annul: bool,
    uncond: bool,
    target: u32,
) -> (u32, u32) {
    if taken {
        if annul && uncond {
            // ba,a: the delay slot is always annulled.
            (target, target.wrapping_add(4))
        } else {
            (npc, target)
        }
    } else if annul {
        // Untaken with annul: skip the delay slot.
        (npc.wrapping_add(4), npc.wrapping_add(8))
    } else {
        (npc, npc.wrapping_add(4))
    }
}

fn logic(r: u32) -> (u32, Option<Icc>) {
    (
        r,
        Some(Icc {
            n: (r as i32) < 0,
            z: r == 0,
            v: false,
            c: false,
        }),
    )
}

fn compare(a: f64, b: f64) -> Fcc {
    if a.is_nan() || b.is_nan() {
        Fcc::Unordered
    } else if a < b {
        Fcc::Less
    } else if a > b {
        Fcc::Greater
    } else {
        Fcc::Equal
    }
}

fn clamp_to_i32(v: f64) -> i32 {
    if v.is_nan() {
        0
    } else if v >= f64::from(i32::MAX) {
        i32::MAX
    } else if v <= f64::from(i32::MIN) {
        i32::MIN
    } else {
        v as i32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eel_edit::Executable;
    use eel_sparc::Assembler;

    /// Runs an assembled program functionally until `ta 0` and returns
    /// the CPU and memory.
    fn run(a: Assembler) -> (Cpu, Memory, u32) {
        let exe = Executable::from_words(
            0x10000,
            a.finish().unwrap().iter().map(|i| i.encode()).collect(),
        );
        let mut mem = Memory::load(&exe);
        let mut cpu = Cpu::new(exe.entry());
        let code = cpu
            .run_to_exit(&mut mem, 100_000)
            .expect("program faulted or exhausted its fuel");
        (cpu, mem, code)
    }

    #[test]
    fn fuel_exhaustion_is_a_typed_error() {
        let mut a = Assembler::new();
        let top = a.new_label();
        a.bind(top);
        a.ba(top);
        a.nop();
        let exe = Executable::from_words(
            0x10000,
            a.finish().unwrap().iter().map(|i| i.encode()).collect(),
        );
        let mut mem = Memory::load(&exe);
        let mut cpu = Cpu::new(exe.entry());
        let err = cpu.run_to_exit(&mut mem, 50).unwrap_err();
        assert_eq!(
            err,
            SimError::InstructionLimit {
                limit: 50,
                retired: 50
            }
        );
        assert!(err.to_string().contains("after retiring 50"), "{err}");
    }

    #[test]
    fn arithmetic_and_exit_code() {
        let mut a = Assembler::new();
        a.mov(Operand::imm(20), IntReg::O0);
        a.add(IntReg::O0, Operand::imm(22), IntReg::O0);
        a.ta(0);
        let (_, _, code) = run(a);
        assert_eq!(code, 42);
    }

    #[test]
    fn counting_loop_with_delay_slot() {
        let mut a = Assembler::new();
        let top = a.new_label();
        a.mov(Operand::imm(0), IntReg::O0); // sum
        a.mov(Operand::imm(5), IntReg::O1); // i
        a.bind(top);
        a.add(IntReg::O0, Operand::Reg(IntReg::O1), IntReg::O0);
        a.subcc(IntReg::O1, Operand::imm(1), IntReg::O1);
        a.b(Cond::Ne, top);
        a.nop();
        a.ta(0);
        let (_, _, code) = run(a);
        assert_eq!(code, 5 + 4 + 3 + 2 + 1);
    }

    #[test]
    fn delay_slot_executes_before_target() {
        let mut a = Assembler::new();
        let out = a.new_label();
        a.ba(out);
        a.mov(Operand::imm(7), IntReg::O0); // delay slot still runs
        a.mov(Operand::imm(9), IntReg::O0); // skipped
        a.bind(out);
        a.ta(0);
        let (_, _, code) = run(a);
        assert_eq!(code, 7);
    }

    #[test]
    fn annulled_untaken_branch_skips_delay() {
        let mut a = Assembler::new();
        let out = a.new_label();
        a.mov(Operand::imm(1), IntReg::O0);
        a.cmp(IntReg::O0, Operand::imm(1));
        a.b_annul(Cond::Ne, out); // not taken, annul
        a.mov(Operand::imm(99), IntReg::O0); // must be annulled
        a.bind(out);
        a.ta(0);
        let (_, _, code) = run(a);
        assert_eq!(code, 1);
    }

    #[test]
    fn annulled_taken_branch_executes_delay() {
        let mut a = Assembler::new();
        let out = a.new_label();
        a.mov(Operand::imm(1), IntReg::O0);
        a.cmp(IntReg::O0, Operand::imm(1));
        a.b_annul(Cond::E, out); // taken, annul → delay executes
        a.mov(Operand::imm(5), IntReg::O0);
        a.bind(out);
        a.ta(0);
        let (_, _, code) = run(a);
        assert_eq!(code, 5);
    }

    #[test]
    fn ba_annul_skips_delay() {
        let mut a = Assembler::new();
        let out = a.new_label();
        a.mov(Operand::imm(3), IntReg::O0);
        a.push(Instruction::Branch {
            cond: Cond::A,
            annul: true,
            disp: 2,
        }); // ba,a out
        a.mov(Operand::imm(99), IntReg::O0); // annulled always
        a.ta(0);
        let _ = out;
        let (_, _, code) = run(a);
        assert_eq!(code, 3);
    }

    #[test]
    fn call_and_retl() {
        let mut a = Assembler::new();
        let f = a.new_label();
        a.call(f);
        a.mov(Operand::imm(10), IntReg::O0); // delay slot sets the argument
        a.ta(0);
        a.nop();
        a.bind(f);
        a.retl();
        a.add(IntReg::O0, Operand::imm(1), IntReg::O0); // delay: increment
        let (_, _, code) = run(a);
        assert_eq!(code, 11);
    }

    #[test]
    fn save_restore_windows() {
        let mut a = Assembler::new();
        let f = a.new_label();
        a.mov(Operand::imm(5), IntReg::O0);
        a.call(f);
        a.nop();
        a.ta(0); // %o0 holds f's return value
        a.nop();
        a.bind(f);
        a.push(Instruction::Save {
            rs1: IntReg::SP,
            src2: Operand::imm(-96),
            rd: IntReg::SP,
        });
        // Callee sees the argument in %i0.
        a.add(IntReg::I0, Operand::imm(2), IntReg::I0);
        a.push(Instruction::ret());
        a.push(Instruction::Restore {
            rs1: IntReg::G0,
            src2: Operand::Reg(IntReg::G0),
            rd: IntReg::G0,
        });
        let (_, _, code) = run(a);
        assert_eq!(code, 7);
    }

    #[test]
    fn memory_roundtrip_through_data_segment() {
        let mut a = Assembler::new();
        a.set(0x0080_0000, IntReg::O1);
        a.mov(Operand::imm(123), IntReg::O0);
        a.st(IntReg::O0, Address::base_imm(IntReg::O1, 0));
        a.mov(Operand::imm(0), IntReg::O0);
        a.ld(Address::base_imm(IntReg::O1, 0), IntReg::O0);
        a.ta(0);
        let exe_asm = a;
        // Data segment must exist: give the image 4 bytes of bss.
        let words: Vec<u32> = exe_asm
            .finish()
            .unwrap()
            .iter()
            .map(|i| i.encode())
            .collect();
        let mut exe = Executable::from_words(0x10000, words);
        exe.reserve_bss(4);
        let mut mem = Memory::load(&exe);
        let mut cpu = Cpu::new(exe.entry());
        loop {
            match cpu.step(&mut mem).unwrap() {
                Step::Continue { .. } => {}
                Step::Exit(code) => {
                    assert_eq!(code, 123);
                    break;
                }
            }
        }
    }

    #[test]
    fn mul_sets_y() {
        let mut a = Assembler::new();
        a.set(0x10000, IntReg::O0);
        a.set(0x10000, IntReg::O1);
        a.smul(IntReg::O0, Operand::Reg(IntReg::O1), IntReg::O2);
        a.push(Instruction::RdY { rd: IntReg::O0 });
        a.ta(0);
        let (_, _, code) = run(a);
        // 0x10000 * 0x10000 = 2^32: high word 1.
        assert_eq!(code, 1);
    }

    #[test]
    fn fp_pipeline_functionality() {
        // Compute (1.5 + 2.5) * 2.0 in double precision via memory.
        let mut a = Assembler::new();
        a.set(0x0080_0000, IntReg::O1);
        // Store 1.5 and 2.5 as doubles using integer stores.
        let bits15 = 1.5f64.to_bits();
        let bits25 = 2.5f64.to_bits();
        a.set((bits15 >> 32) as u32, IntReg::O2);
        a.st(IntReg::O2, Address::base_imm(IntReg::O1, 0));
        a.set(bits15 as u32, IntReg::O2);
        a.st(IntReg::O2, Address::base_imm(IntReg::O1, 4));
        a.set((bits25 >> 32) as u32, IntReg::O2);
        a.st(IntReg::O2, Address::base_imm(IntReg::O1, 8));
        a.set(bits25 as u32, IntReg::O2);
        a.st(IntReg::O2, Address::base_imm(IntReg::O1, 12));
        a.lddf(Address::base_imm(IntReg::O1, 0), eel_sparc::FpReg::new(0));
        a.lddf(Address::base_imm(IntReg::O1, 8), eel_sparc::FpReg::new(2));
        a.faddd(
            eel_sparc::FpReg::new(0),
            eel_sparc::FpReg::new(2),
            eel_sparc::FpReg::new(4),
        );
        a.faddd(
            eel_sparc::FpReg::new(4),
            eel_sparc::FpReg::new(4),
            eel_sparc::FpReg::new(6),
        );
        // Convert to int and move through memory into %o0.
        a.push(Instruction::Fp {
            op: FpOp::FdToI,
            rs1: eel_sparc::FpReg::new(0),
            rs2: eel_sparc::FpReg::new(6),
            rd: eel_sparc::FpReg::new(8),
        });
        a.stf(eel_sparc::FpReg::new(8), Address::base_imm(IntReg::O1, 16));
        a.ld(Address::base_imm(IntReg::O1, 16), IntReg::O0);
        a.ta(0);
        let words: Vec<u32> = a.finish().unwrap().iter().map(|i| i.encode()).collect();
        let mut exe = Executable::from_words(0x10000, words);
        exe.reserve_bss(32);
        let mut mem = Memory::load(&exe);
        let mut cpu = Cpu::new(exe.entry());
        loop {
            match cpu.step(&mut mem).unwrap() {
                Step::Continue { .. } => {}
                Step::Exit(code) => {
                    assert_eq!(code, 8, "(1.5+2.5)*2 = 8");
                    break;
                }
            }
        }
    }

    #[test]
    fn fcmp_and_fbranch() {
        let mut a = Assembler::new();
        let less = a.new_label();
        // 1.0f < 2.0f
        a.set(1.0f32.to_bits(), IntReg::O2);
        a.set(0x0080_0000, IntReg::O1);
        a.st(IntReg::O2, Address::base_imm(IntReg::O1, 0));
        a.set(2.0f32.to_bits(), IntReg::O2);
        a.st(IntReg::O2, Address::base_imm(IntReg::O1, 4));
        a.ldf(Address::base_imm(IntReg::O1, 0), eel_sparc::FpReg::new(0));
        a.ldf(Address::base_imm(IntReg::O1, 4), eel_sparc::FpReg::new(1));
        a.fcmps(eel_sparc::FpReg::new(0), eel_sparc::FpReg::new(1));
        a.nop(); // SPARC requires a gap between fcmp and fbfcc
        a.fb(FCond::L, less);
        a.nop();
        a.mov(Operand::imm(0), IntReg::O0);
        a.ta(0);
        a.nop();
        a.bind(less);
        a.mov(Operand::imm(1), IntReg::O0);
        a.ta(0);
        let words: Vec<u32> = a.finish().unwrap().iter().map(|i| i.encode()).collect();
        let mut exe = Executable::from_words(0x10000, words);
        exe.reserve_bss(8);
        let mut mem = Memory::load(&exe);
        let mut cpu = Cpu::new(exe.entry());
        loop {
            match cpu.step(&mut mem).unwrap() {
                Step::Continue { .. } => {}
                Step::Exit(code) => {
                    assert_eq!(code, 1);
                    break;
                }
            }
        }
    }

    #[test]
    fn window_underflow_faults() {
        let mut a = Assembler::new();
        a.push(Instruction::Restore {
            rs1: IntReg::G0,
            src2: Operand::Reg(IntReg::G0),
            rd: IntReg::G0,
        });
        a.ta(0);
        let exe = Executable::from_words(
            0x10000,
            a.finish().unwrap().iter().map(|i| i.encode()).collect(),
        );
        let mut mem = Memory::load(&exe);
        let mut cpu = Cpu::new(exe.entry());
        assert!(matches!(
            cpu.step(&mut mem),
            Err(SimError::WindowUnderflow { .. })
        ));
    }

    #[test]
    fn illegal_instruction_faults() {
        let exe = Executable::from_words(0x10000, vec![0xFFFF_FFFF]);
        let mut mem = Memory::load(&exe);
        let mut cpu = Cpu::new(exe.entry());
        assert!(matches!(
            cpu.step(&mut mem),
            Err(SimError::IllegalInstruction { .. })
        ));
    }

    #[test]
    fn division_by_zero_faults() {
        let mut a = Assembler::new();
        a.push(Instruction::WrY {
            rs1: IntReg::G0,
            src2: Operand::imm(0),
        });
        a.alu(AluOp::UDiv, IntReg::O0, Operand::imm(0), IntReg::O1);
        let exe = Executable::from_words(
            0x10000,
            a.finish().unwrap().iter().map(|i| i.encode()).collect(),
        );
        let mut mem = Memory::load(&exe);
        let mut cpu = Cpu::new(exe.entry());
        cpu.step(&mut mem).unwrap();
        assert!(matches!(
            cpu.step(&mut mem),
            Err(SimError::DivisionByZero { .. })
        ));
    }

    #[test]
    fn subcc_condition_codes() {
        let mut a = Assembler::new();
        a.mov(Operand::imm(5), IntReg::O0);
        a.cmp(IntReg::O0, Operand::imm(5));
        a.ta(0);
        let (cpu, _, _) = run(a);
        assert!(cpu.icc.z);
        assert!(!cpu.icc.n);
        assert!(!cpu.icc.c);

        let mut a = Assembler::new();
        a.mov(Operand::imm(3), IntReg::O0);
        a.cmp(IntReg::O0, Operand::imm(5));
        a.ta(0);
        let (cpu, _, _) = run(a);
        assert!(!cpu.icc.z);
        assert!(cpu.icc.n, "3 - 5 is negative");
        assert!(cpu.icc.c, "borrow set for unsigned less");
    }

    #[test]
    fn unsigned_conditions() {
        let mut a = Assembler::new();
        a.set(0xFFFF_F000, IntReg::O0);
        a.cmp(IntReg::O0, Operand::imm(1));
        a.ta(0);
        let (cpu, _, _) = run(a);
        assert!(cpu.cond(Cond::Gu), "0xfffff000 > 1 unsigned");
        assert!(!cpu.cond(Cond::G), "but negative signed");
    }
}
