//! A SPARC V8 functional and timing simulator — the stand-in for the
//! paper's real SuperSPARC and UltraSPARC hardware.
//!
//! The functional core ([`Cpu`]) interprets the `eel-sparc` subset
//! with faithful delay-slot and annul semantics, condition codes,
//! demand-grown register windows, and an exit trap (`ta 0`). The
//! timing engine ([`run`]) retires each instruction through the same
//! SADL-derived pipeline state the scheduler consults
//! (`eel-pipeline`), optionally adding taken-branch and
//! instruction-cache penalties the scheduler's model deliberately
//! omits — reproducing the paper's model-vs-machine gap. Eligible
//! timed runs execute on a block-memoized replay engine that caches
//! the decode/`prepare`/timing walk per (basic block, entry pipeline
//! context); [`ReferenceCpu`] is the per-instruction oracle it is
//! differentially pinned to, and `EEL_NO_BLOCK_CACHE=1` forces every
//! run onto that reference path.
//!
//! Per-word execution counts ([`RunResult::pc_counts`]) let tests
//! validate QPT2 profiles against ground truth.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod block;
mod cpu;
mod error;
mod icache;
mod memory;
mod predictor;
mod reference;
mod run;

pub use cpu::{Cpu, Fcc, Icc, Step, STACK_TOP};
pub use error::SimError;
pub use icache::{DCacheConfig, ICache, ICacheConfig};
pub use memory::Memory;
pub use predictor::{BranchPredictor, BranchPredictorConfig};
pub use reference::ReferenceCpu;
pub use run::{run, run_with, RunConfig, RunResult, TimingConfig};
