//! Ad-hoc perf localization probes, ignored by default. Run with
//! `cargo test -p eel-sim --release --test perf_probe -- --ignored --nocapture`.

use eel_edit::Executable;
use eel_pipeline::MachineModel;
use eel_sim::{run, RunConfig, TimingConfig};
use eel_sparc::{Address, Assembler, Cond, IntReg, Operand};
use std::time::Instant;

fn time_one(label: &str, exe: &Executable) {
    let model = MachineModel::ultrasparc();
    let cfg = RunConfig {
        timing: Some(TimingConfig {
            taken_branch_penalty: 1,
            ..TimingConfig::default()
        }),
        ..RunConfig::default()
    };
    // Warm.
    let r = run(exe, Some(&model), &cfg).unwrap();
    let t = Instant::now();
    let mut insns = 0;
    for _ in 0..5 {
        insns += run(exe, Some(&model), &cfg).unwrap().instructions;
    }
    let ns = t.elapsed().as_nanos() as f64 / insns as f64;
    println!(
        "{label:28} {ns:6.1} ns/insn  ({} insns/run)",
        r.instructions
    );
}

fn finish(a: Assembler) -> Executable {
    let mut exe = Executable::from_words(
        0x10000,
        a.finish().unwrap().iter().map(|i| i.encode()).collect(),
    );
    exe.reserve_bss(4096);
    exe
}

#[test]
#[ignore]
fn probe() {
    // Pure covered ALU ops in a long block.
    let mut a = Assembler::new();
    let top = a.new_label();
    a.set(2_000_00, IntReg::O1);
    a.bind(top);
    for _ in 0..12 {
        a.add(IntReg::O0, Operand::imm(1), IntReg::O0);
        a.xor(IntReg::O2, Operand::imm(5), IntReg::O2);
    }
    a.subcc(IntReg::O1, Operand::imm(1), IntReg::O1);
    a.b(Cond::Ne, top);
    a.nop();
    a.ta(0);
    time_one("alu-covered", &finish(a));

    // Word loads/stores, imm offset (covered).
    let mut a = Assembler::new();
    let top = a.new_label();
    a.set(2_000_00, IntReg::O1);
    a.set(Executable::DEFAULT_DATA_BASE, IntReg::O5);
    a.bind(top);
    for _ in 0..6 {
        a.ld(Address::base_imm(IntReg::O5, 0), IntReg::O3);
        a.st(IntReg::O3, Address::base_imm(IntReg::O5, 8));
    }
    a.subcc(IntReg::O1, Operand::imm(1), IntReg::O1);
    a.b(Cond::Ne, top);
    a.nop();
    a.ta(0);
    time_one("mem-word-covered", &finish(a));

    // Byte loads (uncovered -> generic step_decoded).
    let mut a = Assembler::new();
    let top = a.new_label();
    a.set(2_000_00, IntReg::O1);
    a.set(Executable::DEFAULT_DATA_BASE, IntReg::O5);
    a.bind(top);
    for _ in 0..12 {
        a.ldub(Address::base_imm(IntReg::O5, 1), IntReg::O3);
    }
    a.subcc(IntReg::O1, Operand::imm(1), IntReg::O1);
    a.b(Cond::Ne, top);
    a.nop();
    a.ta(0);
    time_one("mem-byte-uncovered", &finish(a));

    // Short blocks: dense branches (block len ~3 + delay slot).
    let mut a = Assembler::new();
    let top = a.new_label();
    a.set(2_000_00, IntReg::O1);
    a.bind(top);
    let mut skips = Vec::new();
    for _ in 0..6 {
        let s = a.new_label();
        a.add(IntReg::O0, Operand::imm(1), IntReg::O0);
        a.b(Cond::N, s); // never taken
        a.nop();
        a.bind(s);
        skips.push(s);
    }
    a.subcc(IntReg::O1, Operand::imm(1), IntReg::O1);
    a.b(Cond::Ne, top);
    a.nop();
    a.ta(0);
    time_one("branchy-short-blocks", &finish(a));
}
