//! Differential property test: the block-replay engine behind
//! [`eel_sim::run`] must agree **exactly** with the retained
//! per-instruction [`ReferenceCpu`] — same retired-instruction count,
//! same cycle count, same exit code or fault, same execution and
//! taken-edge profiles, same cache/predictor totals, and same final
//! memory — on randomized programs, on every shipped machine model,
//! with and without the instruction cache and branch predictor.
//!
//! Programs come from two generators: raw word soup (decode is total,
//! so arbitrary `u32`s explore the whole instruction space, including
//! wild control flow and faulting memory traffic — faults must match
//! too) and bounded countdown loops whose bodies are random words
//! (steady-state re-execution is what the timing memo actually
//! caches, so loops are the interesting case). Runaway control flow
//! is bounded by a small instruction budget; hitting it is itself a
//! compared outcome.

use eel_edit::Executable;
use eel_pipeline::MachineModel;
use eel_sim::{
    run, BranchPredictorConfig, ICacheConfig, ReferenceCpu, RunConfig, SimError, TimingConfig,
};
use eel_sparc::{Assembler, Cond, IntReg, Operand};
use proptest::prelude::*;

fn shipped_models() -> Vec<MachineModel> {
    vec![
        MachineModel::hypersparc(),
        MachineModel::supersparc(),
        MachineModel::ultrasparc(),
        MachineModel::microsparc(),
        MachineModel::vliw(),
        MachineModel::deepsparc(),
    ]
}

/// A raw program: the words as given, with a trap exit appended so at
/// least one halting path exists.
fn soup_exe(words: &[u32]) -> Executable {
    let mut text = words.to_vec();
    text.push(0x91d0_2000); // ta 0
    let mut exe = Executable::from_words(0x10000, text);
    exe.reserve_bss(4096);
    exe
}

/// A countdown loop around the body words: guaranteed forward
/// progress toward the trap exit, while the body reruns enough times
/// for the block memo to reach steady state.
fn loop_exe(body: &[u32], iters: u32) -> Executable {
    let mut a = Assembler::new();
    let top = a.new_label();
    a.set(iters, IntReg::L0);
    a.bind(top);
    for &w in body {
        // `decode` is total, so any word becomes *some* instruction
        // (including CTIs that may leave the loop — the budget bounds
        // those runs).
        a.push(eel_sparc::Instruction::decode(w));
    }
    a.subcc(IntReg::L0, Operand::imm(1), IntReg::L0);
    a.b(Cond::Ne, top);
    a.nop();
    a.ta(0);
    let text: Vec<u32> = a.finish().unwrap().iter().map(|i| i.encode()).collect();
    let mut exe = Executable::from_words(0x10000, text);
    exe.reserve_bss(4096);
    exe
}

/// Run both engines and require identical observable outcomes.
fn assert_engines_agree(exe: &Executable, model: &MachineModel, cfg: &RunConfig) {
    let fast = run(exe, Some(model), cfg);
    let refr = ReferenceCpu::run(exe, Some(model), cfg);
    match (fast, refr) {
        (Err(a), Err(b)) => assert_eq!(a, b, "fault mismatch on {}", model.name()),
        (Ok(a), Ok(b)) => {
            assert_eq!(a.instructions, b.instructions, "insns on {}", model.name());
            assert_eq!(a.cycles, b.cycles, "cycles on {}", model.name());
            assert_eq!(a.exit_code, b.exit_code, "exit on {}", model.name());
            assert_eq!(a.pc_counts, b.pc_counts, "pc profile on {}", model.name());
            assert_eq!(
                a.taken_counts,
                b.taken_counts,
                "taken profile on {}",
                model.name()
            );
            assert_eq!(a.icache_misses, b.icache_misses, "icache misses");
            assert_eq!(a.mispredicts, b.mispredicts, "mispredicts");
            assert_eq!(a.taken_branches, b.taken_branches, "taken branches");
            assert_eq!(a.mem_ops, b.mem_ops, "mem ops");
            // Final data memory: stores must have replayed identically.
            let (mut am, mut bm) = (a.memory, b.memory);
            for off in (0..4096).step_by(4) {
                let addr = exe.data_base() + off;
                assert_eq!(
                    am.read_u32(addr),
                    bm.read_u32(addr),
                    "memory at {addr:#x} on {}",
                    model.name()
                );
            }
        }
        (a, b) => panic!(
            "outcome kind mismatch on {}: fast {:?} vs reference {:?}",
            model.name(),
            a.map(|r| r.exit_code),
            b.map(|r| r.exit_code)
        ),
    }
}

/// The two timing shapes the block engine specializes: bare pipeline
/// timing, and the full measured machine with a deliberately tiny
/// I-cache and predictor so conflict misses and mispredicts are dense.
fn configs() -> Vec<RunConfig> {
    let bare = RunConfig {
        max_instructions: 20_000,
        timing: Some(TimingConfig {
            taken_branch_penalty: 1,
            ..TimingConfig::default()
        }),
        ..RunConfig::default()
    };
    let mut full = bare.clone();
    full.timing = Some(TimingConfig {
        taken_branch_penalty: 2,
        icache: Some(ICacheConfig {
            size: 256,
            line: 32,
            miss_penalty: 7,
        }),
        predictor: Some(BranchPredictorConfig {
            entries: 16,
            mispredict_penalty: 3,
        }),
        ..TimingConfig::default()
    });
    vec![bare, full]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn word_soup_agrees(words in prop::collection::vec(any::<u32>(), 1..40)) {
        let exe = soup_exe(&words);
        for model in shipped_models() {
            for cfg in configs() {
                assert_engines_agree(&exe, &model, &cfg);
            }
        }
    }

    #[test]
    fn random_loops_agree(
        body in prop::collection::vec(any::<u32>(), 1..24),
        iters in 2u32..60,
    ) {
        let exe = loop_exe(&body, iters);
        for model in shipped_models() {
            for cfg in configs() {
                assert_engines_agree(&exe, &model, &cfg);
            }
        }
    }

    #[test]
    fn functional_only_runs_agree(words in prop::collection::vec(any::<u32>(), 1..40)) {
        // No model at all: the pure functional path must match too.
        let exe = soup_exe(&words);
        let cfg = RunConfig {
            max_instructions: 20_000,
            ..RunConfig::default()
        };
        let fast = run(&exe, None, &cfg);
        let refr = ReferenceCpu::run(&exe, None, &cfg);
        match (fast, refr) {
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(a.instructions, b.instructions);
                prop_assert_eq!(a.exit_code, b.exit_code);
                prop_assert_eq!(a.pc_counts, b.pc_counts);
            }
            (a, b) => panic!(
                "outcome kind mismatch: {:?} vs {:?}",
                a.map(|r| r.exit_code),
                b.map(|r| r.exit_code)
            ),
        }
    }
}

/// The attribution configuration routes both sides through the same
/// interpretive loop (the block engine is ineligible by design); pin
/// that the dispatcher preserves profile equality there too.
#[test]
fn attributed_runs_still_agree() {
    let exe = loop_exe(&[0x9001_2008, 0xd222_2004], 40);
    let model = MachineModel::ultrasparc();
    let cfg = RunConfig {
        max_instructions: 20_000,
        attribute_stalls: true,
        timing: Some(TimingConfig {
            taken_branch_penalty: 1,
            ..TimingConfig::default()
        }),
        ..RunConfig::default()
    };
    let fast = run(&exe, Some(&model), &cfg);
    let refr = ReferenceCpu::run(&exe, Some(&model), &cfg);
    match (fast, refr) {
        (Ok(a), Ok(b)) => {
            assert_eq!(a.cycles, b.cycles);
            assert_eq!(a.instructions, b.instructions);
            let (ap, bp) = (a.stall_profile, b.stall_profile);
            assert_eq!(ap.is_some(), bp.is_some());
            assert_eq!(ap, bp, "stall attribution must agree");
        }
        (a, b) => panic!("unexpected outcomes: {a:?} vs {b:?}"),
    }
}

/// `SimError` equality is what the proptests rely on for fault
/// comparison; pin one concrete interesting case — an instruction
/// budget fault must report the same retired count from both engines.
#[test]
fn budget_fault_reports_identical_retired_counts() {
    // An infinite loop: `b always` back to itself with a nop slot.
    let mut a = Assembler::new();
    let top = a.new_label();
    a.bind(top);
    a.b(Cond::A, top);
    a.nop();
    let words: Vec<u32> = a.finish().unwrap().iter().map(|i| i.encode()).collect();
    let mut exe = Executable::from_words(0x10000, words);
    exe.reserve_bss(64);
    let model = MachineModel::ultrasparc();
    for budget in [1u64, 2, 3, 100, 101] {
        let cfg = RunConfig {
            max_instructions: budget,
            timing: Some(TimingConfig::default()),
            ..RunConfig::default()
        };
        let fast = run(&exe, Some(&model), &cfg).expect_err("loop never exits");
        let refr = ReferenceCpu::run(&exe, Some(&model), &cfg).expect_err("loop never exits");
        assert_eq!(fast, refr, "budget {budget}");
        assert!(matches!(
            fast,
            SimError::InstructionLimit { limit, .. } if limit == budget
        ));
    }
}

/// Crafted I-cache conflict: a loop whose body spans two lines that
/// collide in a 2-line direct-mapped cache with a third straddling
/// block, so every iteration misses. The block engine's batched
/// per-line probes must report the same miss total as the reference's
/// per-instruction probes — and the expected count is known.
#[test]
fn crafted_icache_conflicts_count_identically() {
    let mut a = Assembler::new();
    let top = a.new_label();
    a.set(50, IntReg::L0);
    a.bind(top);
    // 24 straight-line words ≈ 96 bytes: spans 4 lines of 32 bytes,
    // overflowing a 64-byte cache every iteration.
    for _ in 0..24 {
        a.add(IntReg::O0, Operand::imm(1), IntReg::O0);
    }
    a.subcc(IntReg::L0, Operand::imm(1), IntReg::L0);
    a.b(Cond::Ne, top);
    a.nop();
    a.ta(0);
    let words: Vec<u32> = a.finish().unwrap().iter().map(|i| i.encode()).collect();
    let mut exe = Executable::from_words(0x10000, words);
    exe.reserve_bss(64);
    let model = MachineModel::ultrasparc();
    let cfg = RunConfig {
        timing: Some(TimingConfig {
            icache: Some(ICacheConfig {
                size: 64,
                line: 32,
                miss_penalty: 8,
            }),
            ..TimingConfig::default()
        }),
        ..RunConfig::default()
    };
    let fast = run(&exe, Some(&model), &cfg).unwrap();
    let refr = ReferenceCpu::run(&exe, Some(&model), &cfg).unwrap();
    assert_eq!(fast.icache_misses, refr.icache_misses);
    assert_eq!(fast.cycles, refr.cycles);
    assert!(
        fast.icache_misses > 100,
        "thrashing loop must miss every iteration, got {}",
        fast.icache_misses
    );
}

/// Crafted mispredict stream: an alternating branch defeats two-bit
/// counters, so mispredicts are dense; the block engine observes the
/// predictor once per conditional branch at the terminator, exactly
/// like the reference observes it per retired branch.
#[test]
fn crafted_alternating_branch_mispredicts_identically() {
    let mut a = Assembler::new();
    let top = a.new_label();
    let skip = a.new_label();
    a.set(200, IntReg::L0);
    a.set(0, IntReg::L1);
    a.bind(top);
    // Toggle L1 between 0 and 1; branch on its value: taken,
    // untaken, taken, … — the worst case for 2-bit counters.
    a.xor(IntReg::L1, Operand::imm(1), IntReg::L1);
    a.subcc(IntReg::L1, Operand::imm(0), IntReg::G0);
    a.b(Cond::Ne, skip); // taken when L1 flipped to 1
    a.nop();
    a.add(IntReg::O0, Operand::imm(1), IntReg::O0);
    a.bind(skip);
    a.subcc(IntReg::L0, Operand::imm(1), IntReg::L0);
    a.b(Cond::Ne, top);
    a.nop();
    a.ta(0);
    let words: Vec<u32> = a.finish().unwrap().iter().map(|i| i.encode()).collect();
    let mut exe = Executable::from_words(0x10000, words);
    exe.reserve_bss(64);
    let model = MachineModel::ultrasparc();
    let cfg = RunConfig {
        timing: Some(TimingConfig {
            predictor: Some(BranchPredictorConfig {
                entries: 64,
                mispredict_penalty: 4,
            }),
            taken_branch_penalty: 1,
            ..TimingConfig::default()
        }),
        ..RunConfig::default()
    };
    let fast = run(&exe, Some(&model), &cfg).unwrap();
    let refr = ReferenceCpu::run(&exe, Some(&model), &cfg).unwrap();
    assert_eq!(fast.mispredicts, refr.mispredicts);
    assert_eq!(fast.cycles, refr.cycles);
    assert_eq!(fast.taken_branches, refr.taken_branches);
    assert!(
        fast.mispredicts > 80,
        "alternation defeats 2-bit counters, got {}",
        fast.mispredicts
    );
}
