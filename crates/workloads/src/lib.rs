//! Synthetic SPEC95 workloads for the EEL scheduling reproduction.
//!
//! The paper evaluates on the SPEC95 suites compiled by Sun's 4.0
//! compilers and run with `ref` inputs — neither of which exists in
//! this environment. This crate substitutes deterministic synthetic
//! SPARC programs, one per SPEC95 benchmark, calibrated to the
//! per-benchmark *dynamic average basic-block size* the paper reports
//! (Table 1's `Avg. BB Size` column) and to the integer/floating-point
//! character of each suite, because those two properties drive how
//! much instrumentation overhead scheduling can hide.
//!
//! ```
//! use eel_workloads::{spec95, BuildOptions};
//!
//! let benchmarks = spec95();
//! assert_eq!(benchmarks.len(), 18);
//! let li = benchmarks.iter().find(|b| b.name == "130.li").unwrap();
//! let exe = li.build(&BuildOptions { iterations: Some(3), ..BuildOptions::default() });
//! assert!(exe.text_len() > 100);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod compile;
mod corpus;
mod gen;

use eel_edit::Executable;
use eel_pipeline::MachineModel;

pub use compile::optimize_block;
pub use corpus::{
    corpus_by_name, full_corpus, golden_corpus, intern_name, load_corpus, parse_manifest,
    CorpusError, CORPUS_SCHEMA, FULL_MANIFEST,
};

/// Which SPEC95 suite a benchmark belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Suite {
    /// CINT95 — integer codes with short blocks.
    Cint,
    /// CFP95 — floating-point codes with long, well-scheduled blocks.
    Cfp,
}

/// Generator shape knobs beyond block size and instruction mix.
///
/// The defaults reproduce the original generator's output
/// byte-for-byte (same RNG draw sequence, same emitted code), so the
/// SPEC95 suite and every golden snapshot are unaffected by the
/// knobs' existence. Non-default shapes drive the stress tiers of the
/// full corpus: deep dependence chains, register-pressure extremes,
/// and randomized (block-skipping) CFGs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenShape {
    /// Probability that an instruction's source is the most recent
    /// definition (dependence-chain density). 0.5 matches compiled
    /// code; ~0.95 makes nearly serial chains.
    pub chain_bias: f64,
    /// Size of the recently-defined register window sources draw
    /// from. Larger windows keep more values live at once
    /// (register-pressure stress); 4 matches the original generator.
    pub live_window: usize,
    /// Probability that a conditional chain branch targets the block
    /// *after* next instead of the next block, so the taken path
    /// skips a block. 0.0 keeps the original straight-chain CFG where
    /// every block executes once per iteration.
    pub skip_prob: f64,
}

impl Default for GenShape {
    fn default() -> GenShape {
        GenShape {
            chain_bias: 0.5,
            live_window: 4,
            skip_prob: 0.0,
        }
    }
}

/// One synthetic benchmark, mirroring a SPEC95 program's profile.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// The SPEC95 name (e.g. `"126.gcc"`).
    pub name: &'static str,
    /// Its suite.
    pub suite: Suite,
    /// The paper's dynamic average basic-block size (instructions).
    pub target_block_size: f64,
    /// Fraction of body instructions that are floating-point.
    pub fp_fraction: f64,
    /// Basic blocks in the main loop body.
    pub chain_blocks: usize,
    /// Outer-loop iterations at the default scale.
    pub iterations: u32,
    /// Leaf routines called once per iteration (integer codes are
    /// call-heavy; FP inner loops call little).
    pub leaf_calls: usize,
    /// Generation seed (derived from the name; deterministic).
    pub seed: u64,
    /// Generator shape knobs (defaults reproduce the original
    /// generator exactly; stress corpus entries override them).
    pub shape: GenShape,
}

/// Options for building a benchmark.
#[derive(Debug, Clone, Default)]
pub struct BuildOptions {
    /// Override the outer-loop iteration count (e.g. for quick tests).
    pub iterations: Option<u32>,
    /// Schedule each generated block for this machine, imitating Sun's
    /// `-xO4 -xchip=…` back end. `None` leaves blocks in naive order
    /// (unoptimized code).
    pub optimize: Option<MachineModel>,
}

impl Benchmark {
    /// Builds the benchmark into an executable image.
    pub fn build(&self, opts: &BuildOptions) -> Executable {
        gen::build(self, opts)
    }

    /// The expected instructions per outer-loop iteration.
    pub fn per_iteration(&self) -> f64 {
        self.target_block_size * (self.chain_blocks + 1 + self.leaf_calls) as f64
    }
}

pub(crate) fn seed_of(name: &str) -> u64 {
    // FNV-1a: stable across runs and platforms.
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn bench(name: &'static str, suite: Suite, target_block_size: f64, fp_fraction: f64) -> Benchmark {
    // Aim for ~600 static instructions of loop body and ~400k dynamic
    // instructions at the default scale.
    let chain_blocks = ((600.0 / target_block_size).round() as usize).clamp(6, 320);
    let leaf_calls = if suite == Suite::Cint { 3 } else { 1 };
    let per_iter = target_block_size * (chain_blocks + 1 + leaf_calls) as f64;
    let iterations = ((400_000.0 / per_iter).round() as u32).max(50);
    Benchmark {
        name,
        suite,
        target_block_size,
        fp_fraction,
        chain_blocks,
        iterations,
        leaf_calls,
        seed: seed_of(name),
        shape: GenShape::default(),
    }
}

/// The CINT95 benchmarks with the paper's dynamic block sizes.
pub fn cint95() -> Vec<Benchmark> {
    vec![
        bench("099.go", Suite::Cint, 2.9, 0.0),
        bench("124.m88ksim", Suite::Cint, 2.2, 0.0),
        bench("126.gcc", Suite::Cint, 2.2, 0.0),
        bench("129.compress", Suite::Cint, 3.0, 0.0),
        bench("130.li", Suite::Cint, 2.0, 0.0),
        bench("132.ijpeg", Suite::Cint, 6.2, 0.0),
        bench("134.perl", Suite::Cint, 2.4, 0.0),
        bench("147.vortex", Suite::Cint, 2.1, 0.0),
    ]
}

/// The CFP95 benchmarks with the paper's dynamic block sizes.
pub fn cfp95() -> Vec<Benchmark> {
    vec![
        bench("101.tomcatv", Suite::Cfp, 13.8, 0.70),
        bench("102.swim", Suite::Cfp, 49.0, 0.80),
        bench("103.su2cor", Suite::Cfp, 10.2, 0.65),
        bench("104.hydro2d", Suite::Cfp, 4.7, 0.55),
        bench("107.mgrid", Suite::Cfp, 32.4, 0.80),
        bench("110.applu", Suite::Cfp, 12.5, 0.70),
        bench("125.turb3d", Suite::Cfp, 6.1, 0.55),
        bench("141.apsi", Suite::Cfp, 10.4, 0.65),
        bench("145.fpppp", Suite::Cfp, 33.9, 0.85),
        bench("146.wave5", Suite::Cfp, 10.9, 0.65),
    ]
}

/// All eighteen SPEC95 benchmarks, CINT then CFP.
pub fn spec95() -> Vec<Benchmark> {
    let mut v = cint95();
    v.extend(cfp95());
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use eel_edit::{Cfg, EditSession};

    fn tiny(b: &Benchmark, optimize: bool) -> Executable {
        b.build(&BuildOptions {
            iterations: Some(2),
            optimize: optimize.then(MachineModel::ultrasparc),
        })
    }

    #[test]
    fn all_benchmarks_build_and_analyze() {
        for b in spec95() {
            let exe = tiny(&b, false);
            let cfg = Cfg::build(&exe).unwrap_or_else(|e| panic!("{}: {e}", b.name));
            assert!(cfg.block_count() >= b.chain_blocks, "{}", b.name);
        }
    }

    #[test]
    fn deterministic_generation() {
        let b = &cint95()[0];
        let x = tiny(b, false);
        let y = tiny(b, false);
        assert_eq!(x.text(), y.text());
    }

    #[test]
    fn different_benchmarks_differ() {
        let a = tiny(&cint95()[0], false);
        let b = tiny(&cint95()[1], false);
        assert_ne!(a.text(), b.text());
    }

    #[test]
    fn static_block_sizes_near_target() {
        for b in spec95() {
            let exe = tiny(&b, false);
            let cfg = Cfg::build(&exe).unwrap();
            let mean = cfg.mean_block_len();
            let target = b.target_block_size;
            assert!(
                (mean - target).abs() / target < 0.35,
                "{}: static mean {mean:.1} vs target {target:.1}",
                b.name
            );
        }
    }

    #[test]
    fn suites_have_the_right_character() {
        for b in cint95() {
            assert_eq!(b.fp_fraction, 0.0, "{}", b.name);
        }
        for b in cfp95() {
            assert!(b.fp_fraction > 0.4, "{}", b.name);
            assert!(b.target_block_size > 4.0, "{}", b.name);
        }
    }

    #[test]
    fn benchmarks_are_editable() {
        // The whole point: EEL must be able to instrument these.
        for b in [&cint95()[4], &cfp95()[1]] {
            let exe = tiny(b, false);
            let mut session = EditSession::new(&exe).unwrap();
            for (r, blk) in session.all_blocks() {
                session.insert_at_block_head(r, blk, vec![eel_sparc::Instruction::nop()]);
            }
            session
                .emit_unscheduled()
                .unwrap_or_else(|e| panic!("{}: {e}", b.name));
        }
    }

    #[test]
    fn optimized_build_differs_but_same_size() {
        let b = &cfp95()[0];
        let plain = tiny(b, false);
        let opt = tiny(b, true);
        // Delay-slot filling may add/remove the odd nop, so sizes can
        // drift slightly, but not meaningfully.
        let delta = plain.text_len().abs_diff(opt.text_len());
        assert!(delta < 10, "sizes drifted by {delta}");
        assert_ne!(plain.text(), opt.text(), "optimization reorders something");
    }

    #[test]
    fn iterations_scale_total_work() {
        let b = &cint95()[3];
        let small = b.build(&BuildOptions {
            iterations: Some(2),
            optimize: None,
        });
        let big = b.build(&BuildOptions {
            iterations: Some(100),
            optimize: None,
        });
        // Same text; iteration count is data in the prologue.
        assert_eq!(small.text_len(), big.text_len());
    }

    #[test]
    fn instruction_mix_matches_suite_character() {
        // FP benchmarks contain FP work; integer benchmarks none.
        for (b, want_fp) in [(&cfp95()[1], true), (&cint95()[2], false)] {
            let exe = tiny(b, false);
            let fp = exe.decode_text().iter().filter(|i| i.is_fp()).count();
            assert_eq!(fp > 0, want_fp, "{}: {fp} fp instructions", b.name);
        }
    }

    #[test]
    fn memory_traffic_is_substantial() {
        // Real codes move data; the generator must too (the single
        // load/store unit is a key scheduling constraint). Tiny-block
        // integer codes are branch-dominated, so their whole-text
        // fraction sits just under 10%.
        for b in [&cint95()[0], &cfp95()[0]] {
            let exe = tiny(b, false);
            let mem = exe.decode_text().iter().filter(|i| i.is_mem()).count();
            let frac = mem as f64 / exe.text_len() as f64;
            assert!(
                (0.09..0.55).contains(&frac),
                "{}: memory fraction {frac:.3}",
                b.name
            );
        }
    }

    #[test]
    fn leaf_routines_present_and_called() {
        let b = &cint95()[0];
        let exe = tiny(b, false);
        assert_eq!(exe.symbols().len(), 1 + b.leaf_calls, "main + leaves");
        let calls = exe
            .decode_text()
            .iter()
            .filter(|i| matches!(i, eel_sparc::Instruction::Call { .. }))
            .count();
        assert_eq!(calls, b.leaf_calls);
    }

    #[test]
    fn generated_code_has_no_unknown_words() {
        for b in spec95().iter().step_by(4) {
            let exe = tiny(b, false);
            for i in exe.decode_text() {
                assert!(
                    !matches!(i, eel_sparc::Instruction::Unknown(_)),
                    "{}: {i}",
                    b.name
                );
            }
        }
    }

    #[test]
    fn delay_slots_are_filled() {
        // The generator models -xO4 output: no nops in delay slots.
        let b = &cint95()[3];
        let exe = tiny(b, true);
        let insns = exe.decode_text();
        let mut nop_slots = 0;
        let mut slots = 0;
        for (k, i) in insns.iter().enumerate() {
            if i.is_cti() && k + 1 < insns.len() {
                slots += 1;
                if insns[k + 1].is_nop() {
                    nop_slots += 1;
                }
            }
        }
        // Only the loop-control branch keeps a nop.
        assert!(slots > 20);
        assert!(nop_slots <= 2, "{nop_slots} nop delay slots of {slots}");
    }

    #[test]
    fn seed_is_stable() {
        assert_eq!(seed_of("130.li"), seed_of("130.li"));
        assert_ne!(seed_of("130.li"), seed_of("126.gcc"));
    }
}
