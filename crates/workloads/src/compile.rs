//! The stand-in for Sun's optimizing compiler back end (`-xO4
//! -xchip=…`): schedules each generated block body for the target
//! machine, then improves it further with a steady-state local search.
//!
//! The paper's Table 1 depends on the original binaries being *better
//! scheduled than EEL can manage*: Sun's compiler scheduled the SPECfp
//! loops so well that EEL's one-shot local list scheduling loses
//! ground when it reschedules them. To reproduce that gap this pass
//! goes beyond `eel-core`'s scheduler: after list scheduling it
//! improves the order against the *steady-state* cost of the block —
//! the issue latency of three back-to-back repetitions, modeling a
//! loop body running iteration after iteration. EEL's per-block
//! scheduler starts from an empty pipeline every time and cannot see
//! that context, so rescheduling such code tends to hurt (the paper's
//! "de-scheduling").

use eel_core::{DepGraph, Scheduler};
use eel_edit::{BlockCode, Tagged};
use eel_pipeline::{evaluate_block, MachineModel};
use eel_sparc::Instruction;

/// Steady-state cost of a body: issue latency of the block repeated
/// three times back-to-back (approximating a loop's repeating
/// context).
fn steady_cost(model: &MachineModel, body: &[Instruction]) -> u64 {
    let mut repeated = Vec::with_capacity(body.len() * 3);
    for _ in 0..3 {
        repeated.extend_from_slice(body);
    }
    evaluate_block(model, &repeated).issue_latency()
}

/// Pairwise dependence matrix over the body, by *original index*: a
/// reordering is legal iff every dependent pair keeps its original
/// relative order. Dependence between two instructions does not depend
/// on their positions, so the matrix is computed once.
fn conflict_matrix(model: &MachineModel, body: &[Instruction]) -> Vec<Vec<bool>> {
    let n = body.len();
    let mut m = vec![vec![false; n]; n];
    for i in 0..n {
        for j in i + 1..n {
            let pair = [Tagged::original(body[i]), Tagged::original(body[j])];
            if !DepGraph::build(model, &pair, true).edges.is_empty() {
                m[i][j] = true;
                m[j][i] = true;
            }
        }
    }
    m
}

/// How far the local search slides an instruction per move.
const MOVE_WINDOW: usize = 6;
const MAX_ROUNDS: usize = 4;

/// Schedules and then locally improves a block body for `model`.
pub fn optimize_block(model: &MachineModel, body: Vec<Instruction>) -> Vec<Instruction> {
    if body.len() <= 1 {
        return body;
    }
    // First, ordinary list scheduling (everything is "original" code).
    let sched = Scheduler::new(model.clone());
    let tagged: Vec<Tagged> = body.into_iter().map(Tagged::original).collect();
    let scheduled = sched
        .schedule_block(BlockCode {
            body: tagged,
            tail: vec![],
        })
        .body;
    let insns: Vec<Instruction> = scheduled.iter().map(|t| t.insn).collect();

    let n = insns.len();
    if n <= 2 {
        return insns;
    }
    let conflicts = conflict_matrix(model, &insns);

    // Local search over permutations, tracked by original index so
    // legality checks stay valid after moves.
    let mut perm: Vec<usize> = (0..n).collect();
    let current = |perm: &[usize]| -> Vec<Instruction> { perm.iter().map(|&k| insns[k]).collect() };
    let mut cost = steady_cost(model, &current(&perm));

    let legal_slide = |perm: &[usize], from: usize, to: usize| -> bool {
        // Slide the element at `from` to position `to`, shifting the
        // in-between elements; legal iff it conflicts with none of them.
        let x = perm[from];
        let (lo, hi) = if from < to {
            (from + 1, to)
        } else {
            (to, from - 1)
        };
        perm[lo..=hi].iter().all(|&y| !conflicts[x][y])
    };

    let mut improved = true;
    let mut rounds = 0;
    while improved && rounds < MAX_ROUNDS {
        improved = false;
        rounds += 1;
        for from in 0..n {
            let lo = from.saturating_sub(MOVE_WINDOW);
            let hi = (from + MOVE_WINDOW).min(n - 1);
            for to in lo..=hi {
                if to == from || !legal_slide(&perm, from, to) {
                    continue;
                }
                let x = perm.remove(from);
                perm.insert(to, x);
                let c = steady_cost(model, &current(&perm));
                if c < cost {
                    cost = c;
                    improved = true;
                } else {
                    let x = perm.remove(to);
                    perm.insert(from, x);
                }
            }
        }
    }
    current(&perm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eel_sparc::{Address, AluOp, FpOp, FpReg, IntReg, MemWidth, Operand};

    fn add(rs1: IntReg, rd: IntReg) -> Instruction {
        Instruction::Alu {
            op: AluOp::Add,
            rs1,
            src2: Operand::imm(1),
            rd,
        }
    }

    fn ld(off: i32, rd: IntReg) -> Instruction {
        Instruction::Load {
            width: MemWidth::Word,
            addr: Address::base_imm(IntReg::L1, off),
            rd,
        }
    }

    fn faddd(a: u8, b: u8, d: u8) -> Instruction {
        Instruction::Fp {
            op: FpOp::FAddD,
            rs1: FpReg::new(a),
            rs2: FpReg::new(b),
            rd: FpReg::new(d),
        }
    }

    #[test]
    fn optimization_never_regresses_steady_cost() {
        let model = MachineModel::ultrasparc();
        let body = vec![
            ld(0, IntReg::O0),
            add(IntReg::O0, IntReg::O1),
            ld(4, IntReg::O2),
            add(IntReg::O2, IntReg::O3),
            add(IntReg::O4, IntReg::O5),
        ];
        let before = steady_cost(&model, &body);
        let out = optimize_block(&model, body.clone());
        let after = steady_cost(&model, &out);
        assert!(after <= before, "{after} > {before}");
        assert_eq!(out.len(), body.len());
    }

    #[test]
    fn optimization_preserves_the_multiset() {
        let model = MachineModel::supersparc();
        let body = vec![
            ld(0, IntReg::O0),
            add(IntReg::O0, IntReg::O1),
            faddd(0, 2, 4),
            add(IntReg::O3, IntReg::O4),
            faddd(4, 6, 8),
            ld(8, IntReg::O5),
        ];
        let mut expect = body.clone();
        let mut out = optimize_block(&model, body);
        expect.sort_by_key(|i| i.encode());
        out.sort_by_key(|i| i.encode());
        assert_eq!(out, expect);
    }

    #[test]
    fn dependent_chain_keeps_order() {
        let model = MachineModel::ultrasparc();
        let body = vec![
            add(IntReg::O0, IntReg::O1),
            add(IntReg::O1, IntReg::O2),
            add(IntReg::O2, IntReg::O3),
        ];
        let out = optimize_block(&model, body.clone());
        assert_eq!(out, body, "a pure chain admits no reordering");
    }

    #[test]
    fn dependences_respected_after_moves() {
        let model = MachineModel::ultrasparc();
        let body = vec![
            ld(0, IntReg::O0),
            add(IntReg::O0, IntReg::O1),
            faddd(0, 2, 4),
            ld(4, IntReg::O2),
            add(IntReg::O2, IntReg::O3),
            faddd(4, 6, 8),
            add(IntReg::O1, IntReg::O4),
        ];
        let out = optimize_block(&model, body.clone());
        // Every dependent pair of the original keeps its order.
        let tagged: Vec<Tagged> = body.iter().copied().map(Tagged::original).collect();
        let graph = DepGraph::build(&model, &tagged, true);
        let pos = |i: Instruction| out.iter().position(|&o| o == i).unwrap();
        for e in &graph.edges {
            if body[e.from] != body[e.to] {
                assert!(pos(body[e.from]) < pos(body[e.to]), "violated {:?}", e);
            }
        }
    }

    #[test]
    fn tiny_bodies_pass_through() {
        let model = MachineModel::hypersparc();
        assert!(optimize_block(&model, vec![]).is_empty());
        let one = vec![add(IntReg::O0, IntReg::O1)];
        assert_eq!(optimize_block(&model, one.clone()), one);
    }
}
