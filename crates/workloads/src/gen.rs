//! The synthetic benchmark generator.
//!
//! Each benchmark is one `main` routine: a prologue, then an outer
//! loop whose body is a chain of basic blocks with per-benchmark
//! sizes and instruction mix, then an exit trap. Every chain block
//! executes exactly once per iteration (conditional branches target
//! the fall-through block, so both arms converge), which makes the
//! dynamic average block size equal to the static chain average —
//! calibrated to the paper's per-benchmark figures.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use eel_edit::Executable;
use eel_sparc::{Address, AluOp, Assembler, Cond, FpOp, FpReg, Instruction, IntReg, Operand};

use crate::compile::optimize_block;
use crate::{Benchmark, BuildOptions, GenShape, Suite};

/// Integer work registers the generator cycles through. `%g1`/`%g2`
/// stay free for instrumentation, `%l0`–`%l2` are the loop counter and
/// array bases, and `%sp`/`%o7` keep their conventional roles.
const INT_REGS: &[IntReg] = &[
    IntReg::O0,
    IntReg::O1,
    IntReg::O2,
    IntReg::O3,
    IntReg::O4,
    IntReg::O5,
    IntReg::L3,
    IntReg::L4,
    IntReg::L5,
    IntReg::L6,
    IntReg::L7,
    IntReg::I0,
    IntReg::I1,
    IntReg::I2,
    IntReg::I3,
];

const LOOP_COUNTER: IntReg = IntReg::L0;
const INT_BASE: IntReg = IntReg::L1;
const FP_BASE: IntReg = IntReg::L2;

/// Bytes of zero-initialized array data the programs touch.
const INT_ARRAY_BYTES: u32 = 4096;
const FP_ARRAY_BYTES: u32 = 8192;

struct BlockPlan {
    /// Straight-line body instructions (before any control tail).
    body: Vec<Instruction>,
    /// The control tail: `None` ⇒ conditional/unconditional branch to
    /// the next block is appended by the emitter.
    tail: Tail,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Tail {
    /// A call to leaf routine `k` (control falls through on return).
    CallLeaf(usize),
    /// Conditional branch to the next block (both arms converge).
    /// With `annul` set, the delay slot executes only when taken,
    /// which is how real compiled code reaches dynamic block sizes
    /// near 2.0. With `skip` set (randomized-CFG shapes only), the
    /// taken arm targets the block *after* next, so the two arms
    /// diverge and the next block executes only on fall-through.
    CondToNext {
        /// The branch's annul bit.
        annul: bool,
        /// Target the block after next instead of the next block.
        skip: bool,
    },
    /// `ba` to the next block.
    BaToNext,
}

/// Generation state: tracks which registers were written recently so
/// dependence chains look like real code.
struct Gen {
    rng: StdRng,
    /// Recently defined integer registers (most recent last).
    recent: Vec<IntReg>,
    next_int: usize,
    next_fp: usize,
    fp_frac: f64,
    shape: GenShape,
}

impl Gen {
    fn new(seed: u64, fp_frac: f64, shape: GenShape) -> Gen {
        Gen {
            rng: StdRng::seed_from_u64(seed),
            recent: vec![IntReg::O0, IntReg::O1],
            next_int: 0,
            next_fp: 0,
            fp_frac,
            shape,
        }
    }

    fn pick_src(&mut self) -> IntReg {
        // Bias toward the most recent definition: real compiled code
        // is chain-dense, which keeps baseline slack (and therefore
        // hiding opportunity) realistic. The bias is the shape's
        // chain-density knob; 0.5 is the calibrated default.
        if self.rng.gen_bool(self.shape.chain_bias) {
            return *self.recent.last().expect("never empty");
        }
        let k = self.rng.gen_range(0..self.recent.len());
        self.recent[k]
    }

    fn pick_dst(&mut self) -> IntReg {
        let r = INT_REGS[self.next_int % INT_REGS.len()];
        self.next_int += 1;
        self.recent.push(r);
        if self.recent.len() > self.shape.live_window {
            self.recent.remove(0);
        }
        r
    }

    /// An instruction safe for any delay slot: plain ALU work that
    /// never touches the condition codes.
    fn delay_insn(&mut self) -> Instruction {
        let op = if self.rng.gen_bool(0.5) {
            AluOp::Add
        } else {
            AluOp::Xor
        };
        let rs1 = self.pick_src();
        Instruction::Alu {
            op,
            rs1,
            src2: Operand::imm(self.rng.gen_range(1..256)),
            rd: self.pick_dst(),
        }
    }

    /// An even FP register for double-precision work.
    fn pick_fp(&mut self) -> FpReg {
        let r = FpReg::new(((self.next_fp % 14) * 2) as u8);
        self.next_fp += 1;
        r
    }

    fn int_offset(&mut self) -> i32 {
        4 * self.rng.gen_range(0..(INT_ARRAY_BYTES / 4)) as i32 % 1024
    }

    fn fp_offset(&mut self) -> i32 {
        8 * self.rng.gen_range(0..(FP_ARRAY_BYTES / 8)) as i32 % 1024
    }

    /// One body instruction with the benchmark's mix.
    fn body_insn(&mut self) -> Instruction {
        if self.rng.gen_bool(self.fp_frac) {
            return self.fp_insn();
        }
        self.int_insn()
    }

    fn int_insn(&mut self) -> Instruction {
        match self.rng.gen_range(0..100) {
            // Loads and stores: ~30% of integer work.
            0..=19 => Instruction::Load {
                width: eel_sparc::MemWidth::Word,
                addr: Address::base_imm(INT_BASE, self.int_offset()),
                rd: self.pick_dst(),
            },
            20..=29 => Instruction::Store {
                width: eel_sparc::MemWidth::Word,
                src: self.pick_src(),
                addr: Address::base_imm(INT_BASE, self.int_offset()),
            },
            // cc-setting compares/tests: ~15%.
            30..=44 => {
                let rs1 = self.pick_src();
                let op = if self.rng.gen_bool(0.5) {
                    AluOp::SubCc
                } else {
                    AluOp::AndCc
                };
                Instruction::Alu {
                    op,
                    rs1,
                    src2: Operand::imm(self.rng.gen_range(0..64)),
                    rd: IntReg::G0,
                }
            }
            // sethi for address formation: ~5%.
            45..=49 => Instruction::Sethi {
                imm22: self.rng.gen_range(1..0x1000),
                rd: self.pick_dst(),
            },
            // Plain ALU: the rest.
            _ => {
                let op = *[
                    AluOp::Add,
                    AluOp::Add,
                    AluOp::Sub,
                    AluOp::And,
                    AluOp::Or,
                    AluOp::Xor,
                    AluOp::Sll,
                    AluOp::Sra,
                ]
                .get(self.rng.gen_range(0..8))
                .expect("in range");
                let rs1 = self.pick_src();
                let src2 = if self.rng.gen_bool(0.5) {
                    Operand::imm(self.rng.gen_range(1..1024))
                } else {
                    Operand::Reg(self.pick_src())
                };
                let shiftish = matches!(op, AluOp::Sll | AluOp::Sra);
                let src2 = if shiftish {
                    Operand::imm(self.rng.gen_range(1..31))
                } else {
                    src2
                };
                Instruction::Alu {
                    op,
                    rs1,
                    src2,
                    rd: self.pick_dst(),
                }
            }
        }
    }

    fn fp_insn(&mut self) -> Instruction {
        match self.rng.gen_range(0..100) {
            0..=24 => Instruction::LoadFp {
                double: true,
                addr: Address::base_imm(FP_BASE, self.fp_offset()),
                rd: self.pick_fp(),
            },
            25..=36 => Instruction::StoreFp {
                double: true,
                src: self.pick_fp(),
                addr: Address::base_imm(FP_BASE, self.fp_offset()),
            },
            37..=69 => {
                let (a, b, d) = (self.pick_fp(), self.pick_fp(), self.pick_fp());
                Instruction::Fp {
                    op: FpOp::FAddD,
                    rs1: a,
                    rs2: b,
                    rd: d,
                }
            }
            70..=94 => {
                let (a, b, d) = (self.pick_fp(), self.pick_fp(), self.pick_fp());
                Instruction::Fp {
                    op: FpOp::FMulD,
                    rs1: a,
                    rs2: b,
                    rd: d,
                }
            }
            _ => {
                let (a, b, d) = (self.pick_fp(), self.pick_fp(), self.pick_fp());
                Instruction::Fp {
                    op: FpOp::FSubD,
                    rs1: a,
                    rs2: b,
                    rd: d,
                }
            }
        }
    }
}

/// Splits `total` instructions into `count` block sizes, each at least
/// `min`, varying around the mean.
fn plan_sizes(rng: &mut StdRng, total: usize, count: usize, min: usize) -> Vec<usize> {
    assert!(count >= 1 && total >= count * min);
    let mean = total as f64 / count as f64;
    let mut sizes: Vec<usize> = (0..count)
        .map(|_| {
            let jitter = rng.gen_range(0.5..1.5);
            ((mean * jitter).round() as usize).max(min)
        })
        .collect();
    // Rebalance to hit the exact total.
    let mut sum: isize = sizes.iter().sum::<usize>() as isize;
    let target = total as isize;
    let mut k = 0;
    while sum != target {
        let i = k % count;
        if sum > target && sizes[i] > min {
            sizes[i] -= 1;
            sum -= 1;
        } else if sum < target {
            sizes[i] += 1;
            sum += 1;
        }
        k += 1;
    }
    sizes
}

/// Builds the benchmark into an executable image.
pub(crate) fn build(bench: &Benchmark, opts: &BuildOptions) -> Executable {
    let mut gen = Gen::new(bench.seed, bench.fp_fraction, bench.shape);

    // Plan the loop-body chain. The final loop-control block costs 3
    // instructions (subcc, bne, delay) and executes once per iteration,
    // so it participates in the average; plan the chain so that the
    // overall mean comes out at the target.
    let chain_blocks = bench.chain_blocks;
    let control_len = 3usize;
    // Annulled branches skip their delay slot when untaken (~half the
    // time), shrinking the dynamic size below the static size; plan
    // statically for that.
    let annul_prob = if bench.suite == Suite::Cint {
        0.35
    } else {
        0.10
    };
    let annul_correction = annul_prob * 0.5;
    let static_target = bench.target_block_size + annul_correction;
    // Integer codes make leaf calls (real SPEC95 is call-heavy); each
    // callee body is one extra block entered per iteration.
    let n_leaves = bench.leaf_calls;
    let entries = chain_blocks + 1 + n_leaves;
    let target_total = (static_target * entries as f64).round() as usize;
    let chain_total = target_total
        .saturating_sub(control_len)
        .max(chain_blocks * 2 + n_leaves * 3);
    let mut sizes = plan_sizes(&mut gen.rng, chain_total, chain_blocks + n_leaves, 2);
    // Callee blocks need room for `retl` + delay: at least 3.
    let leaf_sizes: Vec<usize> = sizes
        .split_off(chain_blocks)
        .iter()
        .map(|&s| s.max(3))
        .collect();

    // Generate each block: body + tail kind. A size-2 block is just a
    // branch plus its delay slot; larger blocks get size-2 bodies.
    let fp_heavy = bench.suite == Suite::Cfp;
    // Spread the call sites evenly through the chain.
    let call_sites: Vec<usize> = (0..n_leaves)
        .map(|k| (k + 1) * chain_blocks / (n_leaves + 1))
        .collect();
    let mut blocks: Vec<BlockPlan> = Vec::with_capacity(chain_blocks);
    for (bi, &size) in sizes.iter().enumerate() {
        // FP codes branch less: mostly `ba` chains; integer codes use
        // conditional branches on whatever the codes currently hold.
        let tail = if let Some(k) = call_sites.iter().position(|&s| s == bi) {
            Tail::CallLeaf(k)
        } else if fp_heavy && gen.rng.gen_bool(0.7) {
            Tail::BaToNext
        } else {
            // The skip decision is short-circuited on `skip_prob > 0`
            // so the default shape draws exactly the original RNG
            // sequence (golden snapshots pin the generated bytes).
            // The last chain block has no block-after-next to skip to.
            let skip = bench.shape.skip_prob > 0.0
                && bi + 2 <= chain_blocks
                && gen.rng.gen_bool(bench.shape.skip_prob);
            Tail::CondToNext {
                annul: gen.rng.gen_bool(annul_prob),
                skip,
            }
        };
        let body_len = size - 2;
        let mut body: Vec<Instruction> = (0..body_len).map(|_| gen.body_insn()).collect();
        if let Some(model) = &opts.optimize {
            body = optimize_block(model, body);
        }
        blocks.push(BlockPlan { body, tail });
    }
    // Leaf routine bodies (retl + delay take 2 of each planned size).
    let leaves: Vec<Vec<Instruction>> = leaf_sizes
        .iter()
        .map(|&size| {
            let mut body: Vec<Instruction> = (0..size - 2).map(|_| gen.body_insn()).collect();
            if let Some(model) = &opts.optimize {
                body = optimize_block(model, body);
            }
            body
        })
        .collect();

    // Emit the program.
    let mut a = Assembler::new();
    let iterations = opts.iterations.unwrap_or(bench.iterations);

    // Prologue: loop counter and array bases.
    a.set(iterations, LOOP_COUNTER);
    a.set(Executable::DEFAULT_DATA_BASE, INT_BASE);
    a.set(Executable::DEFAULT_DATA_BASE + INT_ARRAY_BYTES, FP_BASE);

    let outer = a.new_label();
    a.bind(outer);
    let mut labels: Vec<_> = (0..blocks.len()).map(|_| a.new_label()).collect();
    labels.push(a.new_label()); // the loop-control block
    let leaf_labels: Vec<_> = (0..leaves.len()).map(|_| a.new_label()).collect();

    for (bi, block) in blocks.iter().enumerate() {
        a.bind(labels[bi]);
        let next = labels[bi + 1];
        // Optimized code keeps its delay slots filled: the slot holds
        // freshly generated safe work, so every block is exactly its
        // planned size.
        let delay = gen.delay_insn();
        for insn in &block.body {
            a.push(*insn);
        }
        match block.tail {
            Tail::CondToNext { annul, skip } => {
                let cond = if gen.rng.gen_bool(0.5) {
                    Cond::Ne
                } else {
                    Cond::E
                };
                let target = if skip { labels[bi + 2] } else { next };
                if annul {
                    a.b_annul(cond, target);
                } else {
                    a.b(cond, target);
                }
            }
            Tail::BaToNext => {
                a.ba(next);
            }
            Tail::CallLeaf(k) => {
                a.call(leaf_labels[k]);
            }
        }
        a.push(delay);
    }

    // Loop control.
    a.bind(labels[blocks.len()]);
    a.subcc(LOOP_COUNTER, Operand::imm(1), LOOP_COUNTER);
    a.b(Cond::Ne, outer);
    a.nop();

    // Exit with a checksum-ish value in %o0.
    a.mov(Operand::Reg(IntReg::O0), IntReg::O0);
    a.ta(0);

    // Leaf routines: straight-line body, then `retl` with a filled
    // delay slot. Their start addresses become symbols so the CFG
    // sees them as routines.
    let mut symbols = vec![eel_edit::Symbol {
        name: "main".to_string(),
        addr: Executable::DEFAULT_TEXT_BASE,
    }];
    for (k, body) in leaves.iter().enumerate() {
        symbols.push(eel_edit::Symbol {
            name: format!("leaf{k}"),
            addr: Executable::DEFAULT_TEXT_BASE + 4 * a.len() as u32,
        });
        a.bind(leaf_labels[k]);
        for insn in body {
            a.push(*insn);
        }
        a.retl();
        a.push(gen.delay_insn());
    }

    let words: Vec<u32> = a
        .finish()
        .expect("generator emits well-formed labels")
        .iter()
        .map(|i| i.encode())
        .collect();
    let mut exe = Executable::new(
        Executable::DEFAULT_TEXT_BASE,
        words,
        Executable::DEFAULT_DATA_BASE,
        Vec::new(),
        0,
        Executable::DEFAULT_TEXT_BASE,
        symbols,
    );
    exe.reserve_bss(INT_ARRAY_BYTES + FP_ARRAY_BYTES);
    exe
}
