//! Corpus manifests: named, reproducible benchmark sets.
//!
//! A corpus is a list of [`Benchmark`]s selected by a small text
//! manifest (schema [`CORPUS_SCHEMA`]). Two corpora are built in:
//!
//! * `golden` — the 18-benchmark synthetic SPEC95 suite the paper's
//!   tables run on (and the per-PR perf gate keeps);
//! * `full` — [`FULL_MANIFEST`], a seeded 20x corpus (360 entries)
//!   adding size tiers (small/medium/large), stress shapes (huge
//!   blocks, deep dependence chains, register-pressure extremes), and
//!   randomized block-skipping CFGs. Nightly CI runs it sharded 4-way.
//!
//! The manifest grammar is line-oriented:
//!
//! ```text
//! # eel-corpus-v1
//! include spec95          # or cint95 / cfp95
//! gen small 90 101        # gen KIND COUNT SEED
//! ```
//!
//! Generation is a pure function of `(KIND, COUNT, SEED)`: every
//! entry's name, seed, and shape derive deterministically, so two
//! processes loading the same manifest always agree on the cell keys
//! they are sharding — the property `--shard i/n` partitioning needs.

use std::collections::BTreeSet;
use std::fmt;
use std::sync::Mutex;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{cfp95, cint95, seed_of, spec95, Benchmark, GenShape, Suite};

/// The header line every corpus manifest must start with.
pub const CORPUS_SCHEMA: &str = "# eel-corpus-v1";

/// The built-in 20x corpus: the SPEC95 suite plus 342 generated
/// entries across the size and stress tiers (360 total, 20x the
/// golden corpus).
pub const FULL_MANIFEST: &str = "\
# eel-corpus-v1
# The nightly corpus: 18 SPEC95 entries + 342 generated = 360 (20x golden).
include spec95
gen small 90 101
gen medium 70 202
gen large 40 303
gen huge-blocks 35 404
gen deep-chains 40 505
gen reg-pressure 35 606
gen random-cfg 32 707
";

/// Why a corpus manifest failed to load.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CorpusError {
    /// The manifest does not start with [`CORPUS_SCHEMA`].
    MissingHeader,
    /// A line that is neither a comment nor a known directive.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        what: String,
    },
    /// An `include` of an unknown suite name.
    UnknownSuite {
        /// 1-based line number.
        line: usize,
        /// The unknown name.
        name: String,
    },
    /// A `gen` directive with an unknown kind.
    UnknownKind {
        /// 1-based line number.
        line: usize,
        /// The unknown kind.
        name: String,
    },
    /// The manifest file could not be read.
    Io(String),
}

impl fmt::Display for CorpusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorpusError::MissingHeader => {
                write!(f, "corpus manifest must start with `{CORPUS_SCHEMA}`")
            }
            CorpusError::Malformed { line, what } => {
                write!(f, "corpus manifest line {line}: {what}")
            }
            CorpusError::UnknownSuite { line, name } => write!(
                f,
                "corpus manifest line {line}: unknown suite `{name}` \
                 (try: spec95, cint95, cfp95)"
            ),
            CorpusError::UnknownKind { line, name } => write!(
                f,
                "corpus manifest line {line}: unknown gen kind `{name}` (try: {})",
                GEN_KINDS.join(", ")
            ),
            CorpusError::Io(what) => write!(f, "corpus manifest: {what}"),
        }
    }
}

impl std::error::Error for CorpusError {}

/// The generator kinds `gen` directives accept.
pub(crate) const GEN_KINDS: &[&str] = &[
    "small",
    "medium",
    "large",
    "huge-blocks",
    "deep-chains",
    "reg-pressure",
    "random-cfg",
];

/// Interns `name` as a `&'static str` (benchmark names are static so
/// table rows can carry them without lifetimes). Repeated loads of
/// the same corpus reuse the same interned string.
pub fn intern_name(name: &str) -> &'static str {
    static NAMES: Mutex<BTreeSet<&'static str>> = Mutex::new(BTreeSet::new());
    let mut set = NAMES.lock().expect("name intern lock");
    if let Some(&existing) = set.get(name) {
        return existing;
    }
    let leaked: &'static str = Box::leak(name.to_string().into_boxed_str());
    set.insert(leaked);
    leaked
}

/// Builds one generated corpus entry. Everything derives from the
/// entry's own RNG, which derives from `(kind, seed, index)` — order
/// of construction never matters.
fn gen_bench(kind: &str, index: usize, manifest_seed: u64) -> Benchmark {
    let name = intern_name(&format!("gen.{kind}.{index:03}"));
    let mut rng = StdRng::seed_from_u64(
        seed_of(kind) ^ manifest_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ index as u64,
    );
    // Per-kind profile: block size, FP mix, shape knobs, and a
    // dynamic-instruction budget that keeps the full corpus cheap
    // enough for nightly sharded runs.
    let (tbs, fp, shape, static_budget, target_dyn) = match kind {
        "small" => (
            rng.gen_range(1.8..3.4),
            0.0,
            GenShape::default(),
            240.0,
            60_000.0,
        ),
        "medium" => {
            let fp = if rng.gen_bool(0.5) {
                rng.gen_range(0.4..0.7)
            } else {
                0.0
            };
            (
                rng.gen_range(4.0..12.0),
                fp,
                GenShape::default(),
                360.0,
                100_000.0,
            )
        }
        "large" => {
            let fp = if rng.gen_bool(0.5) {
                rng.gen_range(0.4..0.75)
            } else {
                0.0
            };
            (
                rng.gen_range(6.0..18.0),
                fp,
                GenShape::default(),
                900.0,
                220_000.0,
            )
        }
        "huge-blocks" => (
            rng.gen_range(60.0..140.0),
            rng.gen_range(0.5..0.8),
            GenShape::default(),
            520.0,
            180_000.0,
        ),
        "deep-chains" => (
            rng.gen_range(3.0..8.0),
            0.0,
            GenShape {
                chain_bias: rng.gen_range(0.90..0.98),
                ..GenShape::default()
            },
            240.0,
            90_000.0,
        ),
        "reg-pressure" => (
            rng.gen_range(4.0..10.0),
            0.0,
            GenShape {
                chain_bias: rng.gen_range(0.10..0.25),
                live_window: rng.gen_range(10..15),
                ..GenShape::default()
            },
            300.0,
            90_000.0,
        ),
        "random-cfg" => (
            rng.gen_range(2.2..6.0),
            0.0,
            GenShape {
                skip_prob: rng.gen_range(0.2..0.5),
                ..GenShape::default()
            },
            300.0,
            90_000.0,
        ),
        other => unreachable!("gen kind `{other}` validated at parse time"),
    };
    let suite = if fp > 0.3 { Suite::Cfp } else { Suite::Cint };
    let chain_blocks = ((static_budget / tbs).round() as usize).clamp(3, 320);
    let leaf_calls = if kind == "huge-blocks" {
        1
    } else if suite == Suite::Cint {
        3
    } else {
        1
    };
    let per_iter = tbs * (chain_blocks + 1 + leaf_calls) as f64;
    let iterations = ((target_dyn / per_iter).round() as u32).max(20);
    Benchmark {
        name,
        suite,
        target_block_size: tbs,
        fp_fraction: fp,
        chain_blocks,
        iterations,
        leaf_calls,
        seed: seed_of(name),
        shape,
    }
}

/// Parses a corpus manifest into its benchmark list.
///
/// # Errors
///
/// A typed [`CorpusError`] naming the offending line.
pub fn parse_manifest(text: &str) -> Result<Vec<Benchmark>, CorpusError> {
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, first)) if first.trim() == CORPUS_SCHEMA => {}
        _ => return Err(CorpusError::MissingHeader),
    }
    let mut out = Vec::new();
    for (i, raw) in lines {
        let line_no = i + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut words = line.split_whitespace();
        match words.next() {
            Some("include") => {
                let name = words.next().ok_or_else(|| CorpusError::Malformed {
                    line: line_no,
                    what: "include needs a suite name".to_string(),
                })?;
                match name {
                    "spec95" => out.extend(spec95()),
                    "cint95" => out.extend(cint95()),
                    "cfp95" => out.extend(cfp95()),
                    other => {
                        return Err(CorpusError::UnknownSuite {
                            line: line_no,
                            name: other.to_string(),
                        })
                    }
                }
            }
            Some("gen") => {
                let mut field = |what: &str| {
                    words
                        .next()
                        .map(str::to_string)
                        .ok_or(CorpusError::Malformed {
                            line: line_no,
                            what: format!("gen needs KIND COUNT SEED (missing {what})"),
                        })
                };
                let kind = field("KIND")?;
                let count = field("COUNT")?;
                let seed = field("SEED")?;
                if !GEN_KINDS.contains(&kind.as_str()) {
                    return Err(CorpusError::UnknownKind {
                        line: line_no,
                        name: kind,
                    });
                }
                let count: usize = count.parse().map_err(|_| CorpusError::Malformed {
                    line: line_no,
                    what: format!("gen COUNT `{count}` is not a number"),
                })?;
                let seed: u64 = seed.parse().map_err(|_| CorpusError::Malformed {
                    line: line_no,
                    what: format!("gen SEED `{seed}` is not a number"),
                })?;
                out.extend((0..count).map(|k| gen_bench(&kind, k, seed)));
            }
            Some(other) => {
                return Err(CorpusError::Malformed {
                    line: line_no,
                    what: format!("unknown directive `{other}` (try: include, gen)"),
                })
            }
            None => unreachable!("empty lines are skipped"),
        }
        if words.next().is_some() {
            return Err(CorpusError::Malformed {
                line: line_no,
                what: "trailing words after directive".to_string(),
            });
        }
    }
    Ok(out)
}

/// The golden corpus: the synthetic SPEC95 suite (what the paper's
/// tables and the per-PR perf gate run on).
pub fn golden_corpus() -> Vec<Benchmark> {
    spec95()
}

/// The built-in 20x corpus ([`FULL_MANIFEST`]).
pub fn full_corpus() -> Vec<Benchmark> {
    parse_manifest(FULL_MANIFEST).expect("built-in manifest parses")
}

/// The built-in corpus named `name` (`golden` or `full`), if any.
pub fn corpus_by_name(name: &str) -> Option<Vec<Benchmark>> {
    match name {
        "golden" => Some(golden_corpus()),
        "full" => Some(full_corpus()),
        _ => None,
    }
}

/// Loads a corpus: a built-in name (`golden`, `full`) or a manifest
/// file path.
///
/// # Errors
///
/// [`CorpusError::Io`] when `spec` is neither built-in nor readable,
/// or any parse error from the manifest.
pub fn load_corpus(spec: &str) -> Result<Vec<Benchmark>, CorpusError> {
    if let Some(corpus) = corpus_by_name(spec) {
        return Ok(corpus);
    }
    let text = std::fs::read_to_string(spec).map_err(|e| {
        CorpusError::Io(format!(
            "`{spec}` is neither a built-in corpus nor a readable manifest: {e}"
        ))
    })?;
    parse_manifest(&text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BuildOptions;

    #[test]
    fn full_corpus_is_20x_golden_and_deterministic() {
        let full = full_corpus();
        let golden = golden_corpus();
        assert_eq!(golden.len(), 18);
        assert_eq!(full.len(), 20 * golden.len(), "full corpus is exactly 20x");
        // Names are unique (sharding partitions by content, which
        // embeds the name).
        let names: BTreeSet<&str> = full.iter().map(|b| b.name).collect();
        assert_eq!(names.len(), full.len(), "duplicate corpus entry names");
        // Loading twice yields identical descriptions.
        let again = full_corpus();
        for (a, b) in full.iter().zip(&again) {
            assert_eq!(format!("{a:?}"), format!("{b:?}"));
        }
    }

    #[test]
    fn every_stress_kind_is_present_and_builds() {
        let full = full_corpus();
        for kind in GEN_KINDS {
            let entry = full
                .iter()
                .find(|b| b.name.starts_with(&format!("gen.{kind}.")))
                .unwrap_or_else(|| panic!("no {kind} entries in the full corpus"));
            let exe = entry.build(&BuildOptions {
                iterations: Some(2),
                ..BuildOptions::default()
            });
            assert!(exe.text_len() > 20, "{}", entry.name);
            let cfg = eel_edit::Cfg::build(&exe).unwrap_or_else(|e| panic!("{}: {e}", entry.name));
            assert!(cfg.block_count() >= entry.chain_blocks, "{}", entry.name);
        }
    }

    #[test]
    fn stress_shapes_have_their_character() {
        let full = full_corpus();
        let by_kind = |kind: &str| -> Vec<&Benchmark> {
            full.iter()
                .filter(|b| b.name.starts_with(&format!("gen.{kind}.")))
                .collect()
        };
        for b in by_kind("huge-blocks") {
            assert!(b.target_block_size >= 60.0, "{}", b.name);
        }
        for b in by_kind("deep-chains") {
            assert!(b.shape.chain_bias >= 0.9, "{}", b.name);
        }
        for b in by_kind("reg-pressure") {
            assert!(b.shape.live_window >= 10, "{}", b.name);
        }
        for b in by_kind("random-cfg") {
            assert!(b.shape.skip_prob >= 0.2, "{}", b.name);
        }
        // Default-shape entries really do carry the default shape, so
        // they share generator behavior with the SPEC95 suite.
        for b in by_kind("small") {
            assert_eq!(b.shape, GenShape::default(), "{}", b.name);
        }
    }

    #[test]
    fn skip_cfg_workloads_have_skip_edges() {
        // A random-cfg entry must actually diverge from the straight
        // chain: some conditional branch targets a block *past* the
        // fall-through successor (a skip edge). Straight-chain
        // workloads only ever branch to the next block or back to the
        // loop head.
        let full = full_corpus();
        let b = full
            .iter()
            .find(|b| b.name.starts_with("gen.random-cfg."))
            .expect("random-cfg entries exist");
        let exe = b.build(&BuildOptions {
            iterations: Some(3),
            ..BuildOptions::default()
        });
        let cfg = eel_edit::Cfg::build(&exe).expect("analyzable");
        let mut skip_edges = 0usize;
        for r in &cfg.routines {
            for (j, blk) in r.blocks.iter().enumerate() {
                for e in &blk.succs {
                    if let eel_edit::Edge::Taken(t) = e {
                        if *t > j + 1 {
                            skip_edges += 1;
                        }
                    }
                }
            }
        }
        assert!(skip_edges > 0, "{}: no skip edges generated", b.name);
    }

    #[test]
    fn manifest_errors_are_typed() {
        assert_eq!(
            parse_manifest("gen small 3 1").unwrap_err(),
            CorpusError::MissingHeader
        );
        let e = parse_manifest("# eel-corpus-v1\ninclude spec2000\n").unwrap_err();
        assert!(
            matches!(e, CorpusError::UnknownSuite { line: 2, .. }),
            "{e}"
        );
        let e = parse_manifest("# eel-corpus-v1\ngen colossal 3 1\n").unwrap_err();
        assert!(matches!(e, CorpusError::UnknownKind { line: 2, .. }), "{e}");
        let e = parse_manifest("# eel-corpus-v1\ngen small many 1\n").unwrap_err();
        assert!(matches!(e, CorpusError::Malformed { line: 2, .. }), "{e}");
        let e = parse_manifest("# eel-corpus-v1\nfrobnicate\n").unwrap_err();
        assert!(matches!(e, CorpusError::Malformed { line: 2, .. }), "{e}");
        // Comments and blank lines are fine; trailing comments too.
        let ok = parse_manifest("# eel-corpus-v1\n\n# note\ninclude cint95 # the int suite\n")
            .expect("comments parse");
        assert_eq!(ok.len(), 8);
    }

    #[test]
    fn builtin_corpora_resolve_by_name() {
        assert_eq!(corpus_by_name("golden").unwrap().len(), 18);
        assert_eq!(corpus_by_name("full").unwrap().len(), 360);
        assert!(corpus_by_name("huge").is_none());
        assert!(load_corpus("golden").is_ok());
        assert!(matches!(
            load_corpus("/nonexistent-corpus.txt"),
            Err(CorpusError::Io(_))
        ));
    }

    #[test]
    fn interned_names_are_stable() {
        let a = intern_name("gen.test.000");
        let b = intern_name("gen.test.000");
        assert!(std::ptr::eq(a, b), "same name, same interned pointer");
    }
}
