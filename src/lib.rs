//! `eel-repro` — facade crate for the reproduction of Schnarr & Larus,
//! *Instruction Scheduling and Executable Editing* (MICRO 1996).
//!
//! Re-exports the workspace crates under stable module names so that
//! examples and integration tests can use a single dependency.

pub use eel_core as core;
pub use eel_edit as edit;
pub use eel_pipeline as pipeline;
pub use eel_qpt as qpt;
pub use eel_sadl as sadl;
pub use eel_sim as sim;
pub use eel_sparc as sparc;
pub use eel_workloads as workloads;
